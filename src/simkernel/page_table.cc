#include "simkernel/page_table.h"

namespace svagc::sim {

namespace {

// With a 48-bit VA split into vpn = bits [12,48), the leaf (PTE) index is the
// low 9 bits of the vpn and each successive level consumes 9 more bits.
std::uint64_t Index(std::uint64_t vpn, unsigned level) {
  return (vpn >> (level * kLevelBits)) & kIndexMask;
}
std::uint64_t PteIndex(std::uint64_t vpn) { return Index(vpn, 0); }

}  // namespace

PageTable::PageTable(telemetry::MetricsRegistry* metrics)
    : Translation(metrics), pgd_(std::make_unique<PgdTable>()) {}
PageTable::~PageTable() = default;

PmdEntry* PageTable::ResolvePmdEntry(std::uint64_t vpn, bool create) const {
  // vpn layout (low to high): [pte:9][pmd:9][pud:9][p4d:9][pgd:9].
  const std::uint64_t pmd_i = Index(vpn, 1);
  const std::uint64_t pud_i = Index(vpn, 2);
  const std::uint64_t p4d_i = Index(vpn, 3);
  const std::uint64_t pgd_i = Index(vpn, 4);

  auto& p4d_slot = pgd_->entries[pgd_i];
  if (!p4d_slot) {
    if (!create) return nullptr;
    p4d_slot = std::make_unique<P4dTable>();
  }
  auto& pud_slot = p4d_slot->entries[p4d_i];
  if (!pud_slot) {
    if (!create) return nullptr;
    pud_slot = std::make_unique<PudTable>();
  }
  auto& pmd_slot = pud_slot->entries[pud_i];
  if (!pmd_slot) {
    if (!create) return nullptr;
    pmd_slot = std::make_unique<PmdTable>();
  }
  return &pmd_slot->entries[pmd_i];
}

PteTable* PageTable::ResolveLeaf(std::uint64_t vpn, bool create) const {
  PmdEntry* entry = ResolvePmdEntry(vpn, create);
  if (entry == nullptr) return nullptr;
  if (!entry->table) {
    // A huge-mapped unit has no PTE granularity until the leaf is split.
    if (!create) return nullptr;
    SVAGC_CHECK(!entry->huge.present());
    entry->table = std::make_unique<PteTable>();
  }
  return entry->table.get();
}

void PageTable::Map(std::uint64_t vpn, frame_t frame) {
  PteTable* leaf = ResolveLeaf(vpn, /*create=*/true);
  Pte& pte = leaf->entries[PteIndex(vpn)];
  SVAGC_CHECK(!pte.present());
  pte = Pte::Make(frame);
  ++mapped_pages_;
}

frame_t PageTable::Unmap(std::uint64_t vpn) {
  PteTable* leaf = ResolveLeaf(vpn, /*create=*/false);
  SVAGC_CHECK(leaf != nullptr);
  Pte& pte = leaf->entries[PteIndex(vpn)];
  SVAGC_CHECK(pte.present() || pte.swapped());
  const frame_t frame = pte.present() ? pte.frame() : kInvalidFrame;
  pte = Pte::Empty();
  --mapped_pages_;
  return frame;
}

void PageTable::MapHuge(std::uint64_t vpn, frame_t base_frame) {
  SVAGC_CHECK((vpn & kIndexMask) == 0);
  PmdEntry* entry = ResolvePmdEntry(vpn, /*create=*/true);
  SVAGC_CHECK(!entry->table && !entry->huge.present());
  entry->huge = Pte::Make(base_frame);
  mapped_pages_ += kPagesPerHuge;
}

frame_t PageTable::UnmapHuge(std::uint64_t vpn) {
  SVAGC_CHECK((vpn & kIndexMask) == 0);
  PmdEntry* entry = ResolvePmdEntry(vpn, /*create=*/false);
  SVAGC_CHECK(entry != nullptr && entry->huge.present());
  const frame_t base = entry->huge.frame();
  entry->huge = Pte::Empty();
  mapped_pages_ -= kPagesPerHuge;
  return base;
}

std::optional<frame_t> PageTable::LookupHuge(std::uint64_t vpn) const {
  const PmdEntry* entry = ResolvePmdEntry(vpn, /*create=*/false);
  if (entry == nullptr || !entry->huge.present()) return std::nullopt;
  return entry->huge.frame();
}

std::optional<frame_t> PageTable::Lookup(std::uint64_t vpn) const {
  const PmdEntry* entry = ResolvePmdEntry(vpn, /*create=*/false);
  if (entry == nullptr) return std::nullopt;
  if (entry->huge.present()) {
    return entry->huge.frame() + PteIndex(vpn);
  }
  if (!entry->table) return std::nullopt;
  const Pte pte = entry->table->entries[PteIndex(vpn)];
  if (!pte.present()) return std::nullopt;
  return pte.frame();
}

Pte PageTable::LookupPte(std::uint64_t vpn) const {
  const PmdEntry* entry = ResolvePmdEntry(vpn, /*create=*/false);
  if (entry == nullptr) return Pte::Empty();
  if (entry->huge.present()) {
    // A huge-covered page is always resident; synthesize its slice.
    return Pte::Make(entry->huge.frame() + PteIndex(vpn));
  }
  if (!entry->table) return Pte::Empty();
  return entry->table->entries[PteIndex(vpn)];
}

Translation::PteRef PageTable::LeafSlotRaw(std::uint64_t vpn) {
  PteTable* leaf = ResolveLeaf(vpn, /*create=*/false);
  PteRef ref;
  if (leaf == nullptr) return ref;
  ref.slot = &leaf->entries[PteIndex(vpn)];
  ref.lock = &leaf->lock;
  return ref;
}

PmdEntry* PageTable::WalkToPmdEntry(std::uint64_t vpn, CycleAccount& acct,
                                    const CostProfile& cost,
                                    PmdCache* cache) const {
  const std::uint64_t tag = vpn >> kLevelBits;
  if (cache != nullptr && cache->tag == tag) {
    // PMD cache hit: skip the four directory accesses (Fig. 7 step 1).
    ++cache->hits;
    return cache->entry;
  }
  // pgd_offset / p4d_offset / pud_offset / pmd_offset: four directory
  // memory accesses.
  acct.Charge(CostKind::kPageWalk, 4 * cost.pagetable_access);
  ctr_walks_->Add();
  PmdEntry* entry = ResolvePmdEntry(vpn, /*create=*/false);
  SVAGC_CHECK(entry != nullptr);
  if (cache != nullptr) {
    ++cache->misses;
    cache->tag = tag;
    cache->entry = entry;
  }
  return entry;
}

PteTable* PageTable::WalkToLeaf(std::uint64_t vpn, CycleAccount& acct,
                                const CostProfile& cost,
                                PmdCache* cache) const {
  PmdEntry* entry = WalkToPmdEntry(vpn, acct, cost, cache);
  // PTE-granularity callers must have split any huge leaf beforehand.
  SVAGC_CHECK(entry->table != nullptr);
  return entry->table.get();
}

PteTable* PageTable::SplitHugeEntry(PmdEntry& entry) {
  SVAGC_CHECK(entry.huge.present() && !entry.table);
  const frame_t base = entry.huge.frame();
  entry.table = std::make_unique<PteTable>();
  for (std::uint64_t i = 0; i < kEntriesPerTable; ++i) {
    entry.table->entries[i] = Pte::Make(base + i);
  }
  entry.huge = Pte::Empty();
  return entry.table.get();
}

Pte* PageTable::GetPteLocked(std::uint64_t vpn, SpinLock** ptlp,
                             CycleAccount& acct, const CostProfile& cost,
                             PmdCache* cache) {
  PteTable* leaf = WalkToLeaf(vpn, acct, cost, cache);
  // pte_offset_map_lock: leaf access + split-PTL acquire.
  acct.Charge(CostKind::kPageWalk, cost.pte_access);
  acct.Charge(CostKind::kPteLock, cost.pte_lock_pair);
  leaf->lock.lock();
  *ptlp = &leaf->lock;
  return &leaf->entries[PteIndex(vpn)];
}

Pte* PageTable::GetPteRaw(std::uint64_t vpn) const {
  PteTable* leaf = ResolveLeaf(vpn, /*create=*/false);
  if (leaf == nullptr) return nullptr;
  return &leaf->entries[PteIndex(vpn)];
}

std::optional<frame_t> PageTable::HardwareWalk(std::uint64_t vpn,
                                               CycleAccount& acct,
                                               const CostProfile& cost,
                                               HugeTranslation* huge) {
  acct.Charge(CostKind::kTlbRefill, cost.tlb_refill);
  ctr_walks_->Add();
  const PmdEntry* entry = ResolvePmdEntry(vpn, /*create=*/false);
  if (entry == nullptr) return std::nullopt;
  if (entry->huge.present()) {
    if (huge != nullptr) {
      huge->huge = true;
      huge->unit_base_frame = entry->huge.frame();
    }
    return entry->huge.frame() + PteIndex(vpn);
  }
  if (!entry->table) return std::nullopt;
  const Pte pte = entry->table->entries[PteIndex(vpn)];
  if (!pte.present()) return std::nullopt;
  return pte.frame();
}

Translation::PteRef PageTable::LeafForPteSwap(std::uint64_t vpn,
                                              CycleAccount& acct,
                                              const CostProfile& cost,
                                              PmdCache* cache) {
  PmdEntry* entry = WalkToPmdEntry(vpn, acct, cost, cache);
  PteRef ref;
  // The demotion check and the split run under one lock: two swappers
  // resolving pages of the same unit must not both split the leaf (the
  // loser reuses the winner's PteTable, and only the winner reports
  // split_huge, so the kernel charges the 512 entry writes once). The THP
  // split: the kernel charges those writes after return, which keeps the
  // charge order (walk, then split) of the pre-interface code.
  split_lock_.lock();
  if (entry->huge.present()) {
    SplitHugeEntry(*entry);
    ref.split_huge = true;
  }
  SVAGC_CHECK(entry->table != nullptr);
  PteTable* leaf = entry->table.get();
  split_lock_.unlock();
  ref.slot = &leaf->entries[PteIndex(vpn)];
  ref.lock = &leaf->lock;
  return ref;
}

bool PageTable::CanExchangeUnits(std::uint64_t unit_vpn_a,
                                 std::uint64_t unit_vpn_b,
                                 std::uint64_t units) const {
  (void)unit_vpn_a;
  (void)unit_vpn_b;
  (void)units;
  return true;
}

void PageTable::ExchangeUnits(std::uint64_t unit_vpn_a,
                              std::uint64_t unit_vpn_b, CycleAccount& acct,
                              const CostProfile& cost, PmdCache* cache_a,
                              PmdCache* cache_b) {
  PmdEntry* ea = WalkToPmdEntry(unit_vpn_a, acct, cost, cache_a);
  PmdEntry* eb = WalkToPmdEntry(unit_vpn_b, acct, cost, cache_b);
  // The whole PMD slot exchanges: leaf-table pointer and huge leaf together,
  // whatever mix the two units carry. PteTable objects (locks included)
  // travel with their entries, so concurrent PTE locking stays coherent.
  std::swap(ea->table, eb->table);
  std::swap(ea->huge, eb->huge);
}

Pte* PageTable::HugeEntryForSwap(std::uint64_t unit_vpn, CycleAccount& acct,
                                 const CostProfile& cost, PmdCache* cache) {
  PmdEntry* entry = WalkToPmdEntry(unit_vpn, acct, cost, cache);
  // All-huge pre-scan guarantees this; with no PteTable present, rotating
  // only the huge values is the whole exchange.
  SVAGC_CHECK(entry->huge.present() && entry->table == nullptr);
  return &entry->huge;
}

namespace {

template <typename F>
void ForEachPmdEntry(const PgdTable& pgd, F&& f) {
  for (const auto& p4d : pgd.entries) {
    if (!p4d) continue;
    for (const auto& pud : p4d->entries) {
      if (!pud) continue;
      for (const auto& pmd : pud->entries) {
        if (!pmd) continue;
        for (const PmdEntry& entry : pmd->entries) f(entry);
      }
    }
  }
}

}  // namespace

void PageTable::VisitSmallPages(
    const std::function<void(std::uint64_t, Pte)>& fn) const {
  for (std::uint64_t pgd_i = 0; pgd_i < kEntriesPerTable; ++pgd_i) {
    const auto& p4d = pgd_->entries[pgd_i];
    if (!p4d) continue;
    for (std::uint64_t p4d_i = 0; p4d_i < kEntriesPerTable; ++p4d_i) {
      const auto& pud = p4d->entries[p4d_i];
      if (!pud) continue;
      for (std::uint64_t pud_i = 0; pud_i < kEntriesPerTable; ++pud_i) {
        const auto& pmd = pud->entries[pud_i];
        if (!pmd) continue;
        for (std::uint64_t pmd_i = 0; pmd_i < kEntriesPerTable; ++pmd_i) {
          const PmdEntry& entry = pmd->entries[pmd_i];
          if (!entry.table) continue;  // unpopulated or huge-mapped: skip
          const std::uint64_t unit_vpn =
              (((pgd_i * kEntriesPerTable + p4d_i) * kEntriesPerTable +
                pud_i) *
                   kEntriesPerTable +
               pmd_i)
              << kLevelBits;
          for (std::uint64_t i = 0; i < kEntriesPerTable; ++i) {
            const Pte pte = entry.table->entries[i];
            if (pte.value != 0) fn(unit_vpn + i, pte);
          }
        }
      }
    }
  }
}

std::uint64_t PageTable::CountAliasedPmdEntries() const {
  std::uint64_t aliased = 0;
  ForEachPmdEntry(*pgd_, [&](const PmdEntry& entry) {
    if (entry.table && entry.huge.present()) ++aliased;
  });
  return aliased;
}

std::uint64_t PageTable::CountHugeLeaves() const {
  std::uint64_t leaves = 0;
  ForEachPmdEntry(*pgd_, [&](const PmdEntry& entry) {
    if (entry.huge.present()) ++leaves;
  });
  return leaves;
}

}  // namespace svagc::sim
