// Four-level x86-64-style page table with Linux-like split PTE locks.
//
// The radix tree is real: walks touch real directory memory, so PMD caching
// eliminates real work in addition to modeled cycles. Leaf tables carry one
// spinlock each (Linux's split page-table locks); Algorithm 1's
// pte_offset_map_lock / pte_unmap_unlock pairing is preserved in
// GetPteLocked / UnlockPte.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "simkernel/config.h"
#include "simkernel/cost_model.h"
#include "support/check.h"
#include "support/spin_lock.h"

namespace svagc::sim {

// A PTE packs (frame << 1) | present. Frame numbers in this simulation are
// indices into PhysicalMemory, not physical addresses, so no flag bits
// beyond `present` are needed.
struct Pte {
  std::uint64_t value = 0;

  bool present() const { return value & 1; }
  frame_t frame() const {
    SVAGC_DCHECK(present());
    return value >> 1;
  }
  static Pte Make(frame_t frame) { return Pte{(frame << 1) | 1}; }
  static Pte Empty() { return Pte{0}; }
};

struct PteTable {
  SpinLock lock;  // split page-table lock, one per leaf table
  std::array<Pte, kEntriesPerTable> entries{};
};

struct PmdTable {
  std::array<std::unique_ptr<PteTable>, kEntriesPerTable> entries;
};
struct PudTable {
  std::array<std::unique_ptr<PmdTable>, kEntriesPerTable> entries;
};
struct P4dTable {
  std::array<std::unique_ptr<PudTable>, kEntriesPerTable> entries;
};
struct PgdTable {
  std::array<std::unique_ptr<P4dTable>, kEntriesPerTable> entries;
};

// Caches the leaf table resolved for the previous page so sequential swaps
// skip the PGD->P4D->PUD->PMD part of the walk (paper §III-B, Fig. 7).
struct PmdCache {
  std::uint64_t tag = ~0ULL;  // vpn >> kLevelBits (2 MiB granule)
  PteTable* table = nullptr;

  // Effectiveness tally (a hit saves four directory accesses); WalkToLeaf
  // bumps these and the kernel drains them into "pmd.hits"/"pmd.misses".
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  void Invalidate() {
    tag = ~0ULL;
    table = nullptr;
  }
};

class PageTable {
 public:
  PageTable();
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;
  ~PageTable();

  // Establishes vpn -> frame. Creates intermediate tables on demand.
  // Not thread-safe against other Map/Unmap calls (mapping happens at
  // address-space setup, like mmap under mmap_lock).
  void Map(std::uint64_t vpn, frame_t frame);

  // Removes the mapping; returns the previously mapped frame.
  frame_t Unmap(std::uint64_t vpn);

  // Read-only lookup used by the TLB-refill path. Returns nullopt when the
  // page is not present. Thread-safe against concurrent PTE *value* updates
  // (the swap paths) because leaf tables are never deallocated while mapped.
  std::optional<frame_t> Lookup(std::uint64_t vpn) const;

  // Algorithm 1's GETPTE: walks the tree charging modeled cycles, locks the
  // leaf table and returns the PTE slot. `cache`, when non-null, implements
  // PMD caching. Caller must pass the returned lock to UnlockPte.
  Pte* GetPteLocked(std::uint64_t vpn, SpinLock** ptlp, CycleAccount& acct,
                    const CostProfile& cost, PmdCache* cache);

  // Directory walk only (charging costs, honoring the PMD cache); returns
  // the leaf table without taking its lock. SwapVA uses this to lock the two
  // PTEs of a pair in a deadlock-free (address-ordered) fashion, the
  // equivalent of Linux checking ptl1 == ptl2 before double-locking.
  PteTable* WalkToLeaf(std::uint64_t vpn, CycleAccount& acct,
                       const CostProfile& cost, PmdCache* cache) const;

  // pte_unmap_unlock.
  static void UnlockPte(SpinLock* ptlp) { ptlp->unlock(); }

  // Uncosted variant for kernel-internal bookkeeping and tests.
  Pte* GetPteRaw(std::uint64_t vpn) const;

  // Walks the tree without locking, charging only walk costs — models the
  // hardware walker on a TLB miss.
  std::optional<frame_t> HardwareWalk(std::uint64_t vpn, CycleAccount& acct,
                                      const CostProfile& cost) const;

  std::uint64_t mapped_pages() const { return mapped_pages_; }

 private:
  PteTable* ResolveLeaf(std::uint64_t vpn, bool create) const;

  std::unique_ptr<PgdTable> pgd_;
  std::uint64_t mapped_pages_ = 0;
};

}  // namespace svagc::sim
