// Four-level x86-64-style page table with Linux-like split PTE locks.
//
// The radix tree is real: walks touch real directory memory, so PMD caching
// eliminates real work in addition to modeled cycles. Leaf tables carry one
// spinlock each (Linux's split page-table locks); Algorithm 1's
// pte_offset_map_lock / pte_unmap_unlock pairing is preserved in
// GetPteLocked / UnlockPte.
//
// PMD entries are real leaves too: an entry either points at a PteTable or
// is a 2 MiB huge leaf mapping kPagesPerHuge contiguous frames (never both —
// the CheckHugeMappingConsistency invariant). Huge leaves can be demoted to
// a PteTable (a THP-style split) when a swap needs PTE granularity.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "simkernel/config.h"
#include "simkernel/cost_model.h"
#include "support/check.h"
#include "support/spin_lock.h"

namespace svagc::sim {

// A PTE packs (frame << 1) | present. Frame numbers in this simulation are
// indices into PhysicalMemory, not physical addresses, so no flag bits
// beyond `present` are needed.
struct Pte {
  std::uint64_t value = 0;

  bool present() const { return value & 1; }
  frame_t frame() const {
    SVAGC_DCHECK(present());
    return value >> 1;
  }
  static Pte Make(frame_t frame) { return Pte{(frame << 1) | 1}; }
  static Pte Empty() { return Pte{0}; }
};

struct PteTable {
  SpinLock lock;  // split page-table lock, one per leaf table
  std::array<Pte, kEntriesPerTable> entries{};
};

// One PMD slot: either a pointer to a PteTable (4 KiB mappings) or a huge
// leaf whose frame() is the base of kPagesPerHuge physically-contiguous
// frames (vpn i inside the unit resolves to huge.frame() + (i & kIndexMask)).
// Exactly one of {table, huge.present()} may be set; both at once is the
// aliasing bug CheckHugeMappingConsistency exists to catch.
struct PmdEntry {
  std::unique_ptr<PteTable> table;
  Pte huge = Pte::Empty();
};

struct PmdTable {
  std::array<PmdEntry, kEntriesPerTable> entries;
};
struct PudTable {
  std::array<std::unique_ptr<PmdTable>, kEntriesPerTable> entries;
};
struct P4dTable {
  std::array<std::unique_ptr<PudTable>, kEntriesPerTable> entries;
};
struct PgdTable {
  std::array<std::unique_ptr<P4dTable>, kEntriesPerTable> entries;
};

// Caches the PMD entry resolved for the previous page so sequential swaps
// skip the PGD->P4D->PUD->PMD part of the walk (paper §III-B, Fig. 7). The
// entry pointer is stable (it lives inside the PmdTable array), so the cache
// survives huge-leaf splits that happen under the same tag.
struct PmdCache {
  std::uint64_t tag = ~0ULL;  // vpn >> kLevelBits (2 MiB granule)
  PmdEntry* entry = nullptr;

  // Effectiveness tally (a hit saves four directory accesses); WalkToLeaf
  // bumps these and the kernel drains them into "pmd.hits"/"pmd.misses".
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  void Invalidate() {
    tag = ~0ULL;
    entry = nullptr;
  }
};

class PageTable {
 public:
  PageTable();
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;
  ~PageTable();

  // Establishes vpn -> frame. Creates intermediate tables on demand.
  // Not thread-safe against other Map/Unmap calls (mapping happens at
  // address-space setup, like mmap under mmap_lock).
  void Map(std::uint64_t vpn, frame_t frame);

  // Removes the mapping; returns the previously mapped frame.
  frame_t Unmap(std::uint64_t vpn);

  // Establishes a 2 MiB huge leaf: vpn must be kPagesPerHuge-aligned and
  // base_frame the first of kPagesPerHuge contiguous frames. The unit must
  // have neither a PteTable nor an existing huge leaf.
  void MapHuge(std::uint64_t vpn, frame_t base_frame);

  // Removes a huge leaf (the unit must currently be huge-mapped); returns
  // the base frame. Units that have since been split must be torn down with
  // per-page Unmap instead.
  frame_t UnmapHuge(std::uint64_t vpn);

  // Base frame of the huge leaf covering vpn, or nullopt when the unit is
  // not huge-mapped (unpopulated or split to PTEs).
  std::optional<frame_t> LookupHuge(std::uint64_t vpn) const;

  // Read-only lookup used by the TLB-refill path. Returns nullopt when the
  // page is not present. Resolves through both PteTable leaves and huge
  // leaves. Thread-safe against concurrent PTE *value* updates (the swap
  // paths) because leaf tables are never deallocated while mapped.
  std::optional<frame_t> Lookup(std::uint64_t vpn) const;

  // Algorithm 1's GETPTE: walks the tree charging modeled cycles, locks the
  // leaf table and returns the PTE slot. `cache`, when non-null, implements
  // PMD caching. Caller must pass the returned lock to UnlockPte.
  Pte* GetPteLocked(std::uint64_t vpn, SpinLock** ptlp, CycleAccount& acct,
                    const CostProfile& cost, PmdCache* cache);

  // Directory walk only (charging costs, honoring the PMD cache); returns
  // the leaf table without taking its lock. SwapVA uses this to lock the two
  // PTEs of a pair in a deadlock-free (address-ordered) fashion, the
  // equivalent of Linux checking ptl1 == ptl2 before double-locking.
  // Aborts if the unit is huge-mapped — PTE-granularity callers must split
  // first (see SplitHugeEntry).
  PteTable* WalkToLeaf(std::uint64_t vpn, CycleAccount& acct,
                       const CostProfile& cost, PmdCache* cache) const;

  // Costed directory walk that stops at the PMD entry itself — the unit of
  // huge-entry swapping. Honors the PMD cache exactly like WalkToLeaf.
  PmdEntry* WalkToPmdEntry(std::uint64_t vpn, CycleAccount& acct,
                           const CostProfile& cost, PmdCache* cache) const;

  // THP-style demotion: replaces a huge leaf with a PteTable whose 512 PTEs
  // map base+0 .. base+511. Uncosted — the kernel charges the entry writes.
  // Returns the new leaf table.
  static PteTable* SplitHugeEntry(PmdEntry& entry);

  // pte_unmap_unlock.
  static void UnlockPte(SpinLock* ptlp) { ptlp->unlock(); }

  // Uncosted variant for kernel-internal bookkeeping and tests. Returns
  // nullptr when the unit has no PteTable (unpopulated or huge-mapped).
  Pte* GetPteRaw(std::uint64_t vpn) const;

  // Result detail for HardwareWalk: set when the translation resolved
  // through a huge leaf, so the TLB can install a 2 MiB entry.
  struct HugeTranslation {
    bool huge = false;
    frame_t unit_base_frame = kInvalidFrame;
  };

  // Walks the tree without locking, charging only walk costs — models the
  // hardware walker on a TLB miss. `huge`, when non-null, reports whether
  // the translation came from a huge leaf.
  std::optional<frame_t> HardwareWalk(std::uint64_t vpn, CycleAccount& acct,
                                      const CostProfile& cost,
                                      HugeTranslation* huge = nullptr) const;

  std::uint64_t mapped_pages() const { return mapped_pages_; }

  // Verification walks over every populated PMD entry (uncosted).
  // CountAliasedPmdEntries returns the number of entries carrying BOTH a
  // PteTable and a huge leaf — any non-zero count is the aliasing corruption
  // the CheckHugeMappingConsistency invariant exists to catch.
  std::uint64_t CountAliasedPmdEntries() const;
  // Number of present 2 MiB huge leaves.
  std::uint64_t CountHugeLeaves() const;

 private:
  PmdEntry* ResolvePmdEntry(std::uint64_t vpn, bool create) const;
  PteTable* ResolveLeaf(std::uint64_t vpn, bool create) const;

  std::unique_ptr<PgdTable> pgd_;
  std::uint64_t mapped_pages_ = 0;
};

}  // namespace svagc::sim
