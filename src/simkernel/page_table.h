// Four-level x86-64-style page table with Linux-like split PTE locks — the
// radix Translation backend.
//
// The radix tree is real: walks touch real directory memory, so PMD caching
// eliminates real work in addition to modeled cycles. Leaf tables carry one
// spinlock each (Linux's split page-table locks); Algorithm 1's
// pte_offset_map_lock / pte_unmap_unlock pairing is preserved in
// GetPteLocked / UnlockPte.
//
// PMD entries are real leaves too: an entry either points at a PteTable or
// is a 2 MiB huge leaf mapping kPagesPerHuge contiguous frames (never both —
// the CheckHugeMappingConsistency invariant). Huge leaves can be demoted to
// a PteTable (a THP-style split) when a swap needs PTE granularity.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "simkernel/config.h"
#include "simkernel/cost_model.h"
#include "simkernel/translation.h"
#include "support/check.h"
#include "support/spin_lock.h"

namespace svagc::sim {

struct PteTable {
  SpinLock lock;  // split page-table lock, one per leaf table
  std::array<Pte, kEntriesPerTable> entries{};
};

// One PMD slot: either a pointer to a PteTable (4 KiB mappings) or a huge
// leaf whose frame() is the base of kPagesPerHuge physically-contiguous
// frames (vpn i inside the unit resolves to huge.frame() + (i & kIndexMask)).
// Exactly one of {table, huge.present()} may be set; both at once is the
// aliasing bug CheckHugeMappingConsistency exists to catch.
struct PmdEntry {
  std::unique_ptr<PteTable> table;
  Pte huge = Pte::Empty();
};

struct PmdTable {
  std::array<PmdEntry, kEntriesPerTable> entries;
};
struct PudTable {
  std::array<std::unique_ptr<PmdTable>, kEntriesPerTable> entries;
};
struct P4dTable {
  std::array<std::unique_ptr<PudTable>, kEntriesPerTable> entries;
};
struct PgdTable {
  std::array<std::unique_ptr<P4dTable>, kEntriesPerTable> entries;
};

class PageTable final : public Translation {
 public:
  explicit PageTable(telemetry::MetricsRegistry* metrics = nullptr);
  ~PageTable() override;

  TranslationBackend backend() const override {
    return TranslationBackend::kRadix;
  }

  // Establishes vpn -> frame. Creates intermediate tables on demand.
  void Map(std::uint64_t vpn, frame_t frame) override;

  // Removes the mapping; returns the previously mapped frame, or
  // kInvalidFrame when the page was swapped out (the caller frees the swap
  // slot instead of a frame).
  frame_t Unmap(std::uint64_t vpn) override;

  // Establishes a 2 MiB huge leaf. The unit must have neither a PteTable nor
  // an existing huge leaf.
  void MapHuge(std::uint64_t vpn, frame_t base_frame) override;

  frame_t UnmapHuge(std::uint64_t vpn) override;

  std::optional<frame_t> LookupHuge(std::uint64_t vpn) const override;

  // Read-only lookup used by the TLB-refill path. Resolves through both
  // PteTable leaves and huge leaves.
  std::optional<frame_t> Lookup(std::uint64_t vpn) const override;

  std::uint64_t mapped_pages() const override { return mapped_pages_; }

  Pte LookupPte(std::uint64_t vpn) const override;
  void VisitSmallPages(
      const std::function<void(std::uint64_t, Pte)>& fn) const override;
  PteRef LeafSlotRaw(std::uint64_t vpn) override;

  // Algorithm 1's GETPTE: walks the tree charging modeled cycles, locks the
  // leaf table and returns the PTE slot. `cache`, when non-null, implements
  // PMD caching. Caller must pass the returned lock to UnlockPte.
  Pte* GetPteLocked(std::uint64_t vpn, SpinLock** ptlp, CycleAccount& acct,
                    const CostProfile& cost, PmdCache* cache);

  // Directory walk only (charging costs, honoring the PMD cache); returns
  // the leaf table without taking its lock. SwapVA locks the two PTEs of a
  // pair deadlock-free through OrderLeafLocks (translation.h), the
  // equivalent of Linux checking ptl1 == ptl2 before double-locking.
  // Aborts if the unit is huge-mapped — PTE-granularity callers must split
  // first (see SplitHugeEntry).
  PteTable* WalkToLeaf(std::uint64_t vpn, CycleAccount& acct,
                       const CostProfile& cost, PmdCache* cache) const;

  // Costed directory walk that stops at the PMD entry itself — the unit of
  // huge-entry swapping. Honors the PMD cache exactly like WalkToLeaf.
  PmdEntry* WalkToPmdEntry(std::uint64_t vpn, CycleAccount& acct,
                           const CostProfile& cost, PmdCache* cache) const;

  // THP-style demotion: replaces a huge leaf with a PteTable whose 512 PTEs
  // map base+0 .. base+511. Uncosted — the kernel charges the entry writes.
  // Returns the new leaf table.
  static PteTable* SplitHugeEntry(PmdEntry& entry);

  // pte_unmap_unlock.
  static void UnlockPte(SpinLock* ptlp) { ptlp->unlock(); }

  // Uncosted variant for kernel-internal bookkeeping and tests. Returns
  // nullptr when the unit has no PteTable (unpopulated or huge-mapped).
  Pte* GetPteRaw(std::uint64_t vpn) const;

  // Walks the tree without locking, charging only walk costs — models the
  // hardware walker on a TLB miss. `huge`, when non-null, reports whether
  // the translation came from a huge leaf.
  std::optional<frame_t> HardwareWalk(std::uint64_t vpn, CycleAccount& acct,
                                      const CostProfile& cost,
                                      HugeTranslation* huge = nullptr) override;

  PteRef LeafForPteSwap(std::uint64_t vpn, CycleAccount& acct,
                        const CostProfile& cost, PmdCache* cache) override;

  // PMD slots exchange wholesale no matter how the unit is populated (table
  // pointer and huge leaf swap together), so the fast path never declines.
  bool CanExchangeUnits(std::uint64_t unit_vpn_a, std::uint64_t unit_vpn_b,
                        std::uint64_t units) const override;
  void ExchangeUnits(std::uint64_t unit_vpn_a, std::uint64_t unit_vpn_b,
                     CycleAccount& acct, const CostProfile& cost,
                     PmdCache* cache_a, PmdCache* cache_b) override;
  Pte* HugeEntryForSwap(std::uint64_t unit_vpn, CycleAccount& acct,
                        const CostProfile& cost, PmdCache* cache) override;

  // Verification walks over every populated PMD entry (uncosted).
  // CountAliasedPmdEntries returns the number of entries carrying BOTH a
  // PteTable and a huge leaf — any non-zero count is the aliasing corruption
  // the CheckHugeMappingConsistency invariant exists to catch.
  std::uint64_t CountAliasedPmdEntries() const;
  std::uint64_t CountAliasedUnits() const override {
    return CountAliasedPmdEntries();
  }
  // Number of present 2 MiB huge leaves.
  std::uint64_t CountHugeLeaves() const override;

 private:
  PmdEntry* ResolvePmdEntry(std::uint64_t vpn, bool create) const;
  PteTable* ResolveLeaf(std::uint64_t vpn, bool create) const;

  std::unique_ptr<PgdTable> pgd_;
  std::uint64_t mapped_pages_ = 0;
  // Serializes THP demotions in LeafForPteSwap: two swappers hitting pages
  // of the same huge unit race to split it, and the PMD entry has no lock of
  // its own (the split PTL lives in the PteTable the split creates).
  SpinLock split_lock_;
};

}  // namespace svagc::sim
