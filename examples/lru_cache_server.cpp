// lru_cache_server: the paper's motivating application class — a memory-
// bound cache service whose tail latency is dominated by full-GC pauses.
//
// Builds an LRU cache directly on the public API (values of uniformly
// random size, the §V-B configuration), serves a request mix under a chosen
// collector, and reports throughput and pause percentiles so collectors can
// be compared head-to-head:
//
//   ./lru_cache_server            # SVAGC (default)
//   ./lru_cache_server parallelgc
//   ./lru_cache_server shenandoah
//   ./lru_cache_server svagc-memmove
#include <cstdio>
#include <cstring>
#include <string>

#include "core/svagc_collector.h"
#include "gc/parallel_gc.h"
#include "gc/shenandoah_gc.h"
#include "runtime/jvm.h"
#include "support/rng.h"

using namespace svagc;

namespace {

constexpr unsigned kEntries = 256;
constexpr std::uint64_t kMaxValueBytes = 256 * 1024;
constexpr unsigned kRequests = 4000;

std::unique_ptr<rt::CollectorIface> MakeCollector(const std::string& name,
                                                  sim::Machine& machine,
                                                  bool* align_large) {
  *align_large = true;
  if (name == "svagc") {
    return std::make_unique<core::SvagcCollector>(machine, 8, 0);
  }
  if (name == "svagc-memmove") {
    core::SvagcConfig config;
    config.move.use_swapva = false;
    return std::make_unique<core::SvagcCollector>(machine, 8, 0, config);
  }
  *align_large = false;
  if (name == "parallelgc") {
    return std::make_unique<gc::ParallelGcLike>(machine, 8, 0);
  }
  if (name == "shenandoah") {
    return std::make_unique<gc::ShenandoahLike>(machine, 8, 0);
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string collector_name = argc > 1 ? argv[1] : "svagc";

  sim::Machine machine(32, sim::ProfileXeonGold6130());
  sim::Kernel kernel(machine);
  sim::PhysicalMemory phys(128ULL << 20);

  rt::JvmConfig config;
  config.heap.capacity = 44ULL << 20;  // ~1.2x the cache's live set
  bool align_large = true;
  auto collector = MakeCollector(collector_name, machine, &align_large);
  if (collector == nullptr) {
    std::fprintf(stderr,
                 "unknown collector '%s' (svagc | svagc-memmove | parallelgc "
                 "| shenandoah)\n",
                 collector_name.c_str());
    return 2;
  }
  config.heap.page_align_large = align_large;
  rt::Jvm jvm(machine, phys, kernel, config);
  jvm.set_collector(std::move(collector));

  // The cache: one root table of value references + host-side recency.
  const auto table = jvm.roots().Add(jvm.New(1, kEntries, 0));
  std::vector<std::uint64_t> stamps(kEntries, 0);
  std::uint64_t clock = 0;
  Rng rng(42);

  auto put = [&](unsigned slot) {
    const std::uint64_t bytes = rng.NextInRange(1, kMaxValueBytes);
    const rt::vaddr_t value = jvm.New(2, 0, bytes);
    jvm.View(jvm.roots().Get(table)).set_ref(slot, value);
    jvm.address_space().StreamTouch(jvm.mutator().cpu,
                                    jvm.View(value).data_base(),
                                    jvm.View(value).data_words() * 8, 0.2,
                                    /*is_write=*/true);
    stamps[slot] = ++clock;
  };

  // Warm up to capacity.
  for (unsigned i = 0; i < kEntries; ++i) put(i);

  // Serve requests: 60% GET / 40% PUT-with-LRU-eviction.
  unsigned hits = 0;
  for (unsigned request = 0; request < kRequests; ++request) {
    ++clock;
    if (rng.NextBelow(100) < 60) {
      const unsigned slot = static_cast<unsigned>(rng.NextBelow(kEntries));
      const rt::vaddr_t value = jvm.View(jvm.roots().Get(table)).ref(slot);
      if (value != 0) {
        ++hits;
        rt::ObjectView view = jvm.View(value);
        jvm.address_space().StreamTouch(jvm.mutator().cpu, view.data_base(),
                                        view.data_words() * 8, 0.2, false);
        stamps[slot] = clock;
      }
    } else {
      unsigned victim = 0;
      for (unsigned i = 1; i < kEntries; ++i) {
        if (stamps[i] < stamps[victim]) victim = i;
      }
      put(victim);
    }
  }

  // Report: modeled service time, GC share, and the pause distribution that
  // decides this service's tail latency.
  rt::GcLog& log = jvm.collector().log();
  const double ghz = machine.cost().ghz;
  const double mutator_ms = jvm.MutatorCycles() / (ghz * 1e6);
  const double gc_ms = log.pauses.total() / (ghz * 1e6);
  std::printf("collector        : %s\n", jvm.collector().name());
  std::printf("requests         : %u (%u hits)\n", kRequests, hits);
  std::printf("service time     : %.3f ms mutator + %.3f ms GC (%.1f%% GC)\n",
              mutator_ms, gc_ms, 100.0 * gc_ms / (mutator_ms + gc_ms));
  std::printf("full collections : %llu\n",
              (unsigned long long)log.collections);
  std::printf("pause p50/p95/max: %.3f / %.3f / %.3f ms\n",
              log.pauses.Percentile(50) / (ghz * 1e6),
              log.pauses.Percentile(95) / (ghz * 1e6),
              log.pauses.max() / (ghz * 1e6));
  std::printf("swap traffic     : %.1f MiB swapped, %.1f MiB copied\n",
              log.bytes_swapped.load() / 1048576.0,
              log.bytes_copied.load() / 1048576.0);
  return 0;
}
