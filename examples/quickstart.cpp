// Quickstart: the five-minute tour of the SVAGC library.
//
// Builds a simulated machine, boots a managed runtime ("a JVM") with the
// SVAGC collector, allocates a mix of small and large objects, forces a
// collection, and prints what SwapVA did — all through the public API.
//
//   ./quickstart
#include <cstdio>

#include "core/svagc_collector.h"
#include "runtime/heap_verifier.h"
#include "runtime/jvm.h"
#include "simkernel/swapva.h"

using namespace svagc;

int main() {
  // 1. A simulated 8-core machine with the paper's main testbed cost
  //    profile, its kernel (which provides the SwapVA syscall), and 64 MiB
  //    of physical memory.
  sim::Machine machine(8, sim::ProfileXeonGold6130());
  sim::Kernel kernel(machine);
  sim::PhysicalMemory phys(64ULL << 20);

  // 2. A JVM with a 16 MiB heap. SVAGC requires page-aligned large objects
  //    (the default heap policy) and a swap threshold of 10 pages.
  rt::JvmConfig config;
  config.heap.capacity = 16ULL << 20;
  config.heap.swap_threshold_pages = 10;
  config.gc_threads = 4;
  rt::Jvm jvm(machine, phys, kernel, config);
  jvm.set_collector(std::make_unique<core::SvagcCollector>(
      machine, config.gc_threads, /*first_core=*/0));

  // 3. Allocate: a root table, some garbage, a large array (1 MiB, moved by
  //    SwapVA) and a small one (moved by memmove).
  const rt::RootSet::Handle root = jvm.roots().Add(jvm.New(
      /*type_id=*/1, /*num_refs=*/4, /*data_bytes=*/0));
  for (int i = 0; i < 40; ++i) jvm.New(2, 0, 16 * 1024);  // dies young

  const rt::vaddr_t big = jvm.New(3, 0, 1 << 20);
  jvm.View(jvm.roots().Get(root)).set_ref(0, big);
  jvm.View(big).set_data_word(0, 0xC0FFEE);

  const rt::vaddr_t small = jvm.New(4, 0, 512);
  jvm.View(jvm.roots().Get(root)).set_ref(1, small);

  std::printf("heap before GC: %.2f MiB used\n",
              jvm.heap().used() / 1048576.0);

  // 4. Collect. (Normally triggered automatically on allocation failure.)
  jvm.RetireAllTlabs();
  jvm.collector().Collect(jvm);

  // 5. Inspect. The root slots were forwarded; data survived; the large
  //    object moved by swapping page-table entries, not bytes.
  const rt::vaddr_t big_now = jvm.View(jvm.roots().Get(root)).ref(0);
  std::printf("heap after GC:  %.2f MiB used\n", jvm.heap().used() / 1048576.0);
  std::printf("large object:   0x%llx -> 0x%llx, payload word = 0x%llx\n",
              (unsigned long long)big, (unsigned long long)big_now,
              (unsigned long long)jvm.View(big_now).data_word(0));

  const rt::GcLog& log = jvm.collector().log();
  std::printf("GC pauses:      %llu cycle(s), %.0fk modeled cycles total\n",
              (unsigned long long)log.collections, log.pauses.total() / 1e3);
  std::printf("moved by swap:  %.2f MiB in %llu syscall(s)\n",
              log.bytes_swapped.load() / 1048576.0,
              (unsigned long long)log.swap_calls.load());
  std::printf("moved by copy:  %.2f KiB\n", log.bytes_copied.load() / 1024.0);

  const rt::VerifyResult verify = rt::VerifyHeap(jvm);
  std::printf("heap verified:  %s (%llu live objects)\n",
              verify.ok ? "OK" : verify.error.c_str(),
              (unsigned long long)verify.objects);
  return verify.ok ? 0 : 1;
}
