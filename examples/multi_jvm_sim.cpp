// multi_jvm_sim: a cluster-node consolidation study — N tenant JVMs on one
// 32-core machine (the paper's §V-B setting), each running the LRU-cache
// service, under a chosen collector. Shows how SwapVA keeps GC time flat as
// the node fills up while memmove-based collection degrades with it.
//
//   ./multi_jvm_sim                 # SVAGC, 1..16 tenants
//   ./multi_jvm_sim parallelgc 32   # ParallelGC, 1..32 tenants
#include <cstdio>
#include <cstdlib>
#include <string>

#include "support/table.h"
#include "workloads/runner.h"

using namespace svagc;
using namespace svagc::workloads;

int main(int argc, char** argv) {
  const std::string collector = argc > 1 ? argv[1] : "svagc";
  const unsigned max_tenants = argc > 2 ? std::atoi(argv[2]) : 16;

  RunConfig config;
  config.workload = "lrucache";
  config.iterations = 16;
  config.gc_threads = 4;  // per-tenant GC threads, as in the paper's Fig. 2
  if (collector == "svagc") {
    config.collector = CollectorKind::kSvagc;
  } else if (collector == "parallelgc") {
    config.collector = CollectorKind::kParallelGc;
  } else if (collector == "shenandoah") {
    config.collector = CollectorKind::kShenandoah;
  } else {
    std::fprintf(stderr, "unknown collector '%s'\n", collector.c_str());
    return 2;
  }

  std::printf("tenant consolidation under %s (32 cores, 4 GC threads each)\n",
              CollectorKindName(config.collector));
  TablePrinter table({"tenants", "per-tenant app(ms)", "per-tenant GC(ms)",
                      "GC max(ms)", "machine IPIs"});
  const double ghz = sim::ProfileXeonGold6130().ghz;
  for (unsigned tenants = 1; tenants <= max_tenants; tenants *= 2) {
    const auto results = RunMultiJvm(config, tenants);
    double app = 0, gc = 0, gc_max = 0;
    std::uint64_t ipis = 0;
    for (const RunResult& r : results) {
      app += r.app_cycles;
      gc += r.gc_total_cycles;
      gc_max = std::max(gc_max, r.gc_max_cycles);
      ipis = r.ipis_sent;
    }
    table.AddRow({Format("%u", tenants),
                  Format("%.3f", app / tenants / (ghz * 1e6)),
                  Format("%.3f", gc / tenants / (ghz * 1e6)),
                  Format("%.3f", gc_max / (ghz * 1e6)),
                  Format("%llu", (unsigned long long)ipis)});
  }
  table.Print();
  std::printf(
      "\ntip: compare `%s svagc` against `%s parallelgc` — the paper's "
      "Fig. 2 vs Fig. 14 contrast.\n",
      argv[0], argv[0]);
  return 0;
}
