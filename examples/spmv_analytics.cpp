// spmv_analytics: a scientific-analytics pipeline — iterative SpMV (the
// power-method inner loop) over a managed CSR matrix whose blocks are
// periodically rebuilt, the §I "scientific computing applications working
// with large matrices" scenario.
//
// Runs the same pipeline twice: SVAGC with SwapVA and the identical
// collector with memmove, then prints the Fig. 11-style comparison for this
// single application:
//
//   ./spmv_analytics [blocks]     # default 96 CSR blocks of ~48 KiB
#include <cstdio>
#include <cstdlib>

#include "core/svagc_collector.h"
#include "runtime/jvm.h"
#include "support/rng.h"

using namespace svagc;

namespace {

struct PipelineResult {
  double mutator_ms = 0;
  double gc_ms = 0;
  double compact_ms = 0;
  std::uint64_t collections = 0;
};

PipelineResult RunPipeline(unsigned blocks, bool use_swapva) {
  sim::Machine machine(32, sim::ProfileXeonGold6130());
  sim::Kernel kernel(machine);
  constexpr std::uint64_t kBlockBytes = 48 * 1024;
  constexpr std::uint64_t kVectorBytes = 256 * 1024;
  const std::uint64_t live = blocks * 2ULL * kBlockBytes + 2 * kVectorBytes;
  sim::PhysicalMemory phys(live * 2 + (16ULL << 20));

  rt::JvmConfig config;
  config.heap.capacity = live * 5 / 4 * 6 / 5;  // ~1.2x minimum
  config.gc_threads = 16;
  rt::Jvm jvm(machine, phys, kernel, config);
  core::SvagcConfig svagc;
  svagc.move.use_swapva = use_swapva;
  jvm.set_collector(std::make_unique<core::SvagcCollector>(
      machine, config.gc_threads, 0, svagc));

  // CSR layout: [values_0..n) [indices_0..n) [x] [y].
  const auto table = jvm.roots().Add(jvm.New(1, 2 * blocks + 2, 0));
  Rng rng(7);
  auto new_block = [&](unsigned slot) {
    const rt::vaddr_t block = jvm.New(2, 0, kBlockBytes);
    jvm.View(jvm.roots().Get(table)).set_ref(slot, block);
    rt::ObjectView view = jvm.View(block);
    for (std::uint64_t w = 0; w < view.data_words(); w += 32) {
      view.set_data_word(w, rng.NextU64());
    }
  };
  for (unsigned i = 0; i < 2 * blocks; ++i) new_block(i);
  for (unsigned v = 0; v < 2; ++v) {
    const rt::vaddr_t vec = jvm.New(2, 0, kVectorBytes);
    jvm.View(jvm.roots().Get(table)).set_ref(2 * blocks + v, vec);
  }

  auto stream = [&](rt::vaddr_t obj, double cpb, bool write) {
    rt::ObjectView view = jvm.View(obj);
    jvm.address_space().StreamTouch(jvm.mutator().cpu, view.data_base(),
                                    view.data_words() * 8, cpb, write);
  };

  // Power iterations: y = A x; renormalize; periodically refresh blocks
  // (adaptive re-tiling creates the large-object churn the GC must absorb).
  for (unsigned iter = 0; iter < 60; ++iter) {
    rt::ObjectView tbl = jvm.View(jvm.roots().Get(table));
    for (unsigned b = 0; b < blocks; ++b) {
      stream(tbl.ref(b), 0.25, false);           // values
      stream(tbl.ref(blocks + b), 0.2, false);   // indices
    }
    stream(tbl.ref(2 * blocks), 0.15, false);    // x
    stream(tbl.ref(2 * blocks + 1), 0.2, true);  // y
    for (unsigned r = 0; r < blocks / 8; ++r) {
      new_block(static_cast<unsigned>(rng.NextBelow(2 * blocks)));
    }
  }

  PipelineResult result;
  const double ghz = machine.cost().ghz;
  const rt::GcLog& log = jvm.collector().log();
  result.mutator_ms = jvm.MutatorCycles() / (ghz * 1e6);
  result.gc_ms = log.pauses.total() / (ghz * 1e6);
  result.compact_ms = log.Sum().compact / (ghz * 1e6);
  result.collections = log.collections;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned blocks = argc > 1 ? std::atoi(argv[1]) : 96;
  std::printf("SpMV analytics pipeline, %u CSR blocks x ~48 KiB\n\n", blocks);

  const PipelineResult memmove_run = RunPipeline(blocks, /*use_swapva=*/false);
  const PipelineResult swap_run = RunPipeline(blocks, /*use_swapva=*/true);

  std::printf("%-22s %12s %12s\n", "", "memmove", "SwapVA");
  std::printf("%-22s %9.3f ms %9.3f ms\n", "mutator time",
              memmove_run.mutator_ms, swap_run.mutator_ms);
  std::printf("%-22s %9.3f ms %9.3f ms\n", "GC time (total)",
              memmove_run.gc_ms, swap_run.gc_ms);
  std::printf("%-22s %9.3f ms %9.3f ms\n", "  of which compaction",
              memmove_run.compact_ms, swap_run.compact_ms);
  std::printf("%-22s %12llu %12llu\n", "full collections",
              (unsigned long long)memmove_run.collections,
              (unsigned long long)swap_run.collections);
  std::printf("\nGC time reduction from SwapVA: %.1f%%\n",
              100.0 * (1.0 - swap_run.gc_ms / memmove_run.gc_ms));
  std::printf("end-to-end speedup:            %.2fx\n",
              (memmove_run.mutator_ms + memmove_run.gc_ms) /
                  (swap_run.mutator_ms + swap_run.gc_ms));
  return 0;
}
