# Empty dependencies file for multi_jvm_sim.
# This may be replaced when dependencies are built.
