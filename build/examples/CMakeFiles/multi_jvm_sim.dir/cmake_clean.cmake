file(REMOVE_RECURSE
  "CMakeFiles/multi_jvm_sim.dir/multi_jvm_sim.cpp.o"
  "CMakeFiles/multi_jvm_sim.dir/multi_jvm_sim.cpp.o.d"
  "multi_jvm_sim"
  "multi_jvm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_jvm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
