file(REMOVE_RECURSE
  "CMakeFiles/lru_cache_server.dir/lru_cache_server.cpp.o"
  "CMakeFiles/lru_cache_server.dir/lru_cache_server.cpp.o.d"
  "lru_cache_server"
  "lru_cache_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lru_cache_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
