# Empty compiler generated dependencies file for lru_cache_server.
# This may be replaced when dependencies are built.
