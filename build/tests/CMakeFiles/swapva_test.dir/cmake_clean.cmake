file(REMOVE_RECURSE
  "CMakeFiles/swapva_test.dir/swapva_test.cc.o"
  "CMakeFiles/swapva_test.dir/swapva_test.cc.o.d"
  "swapva_test"
  "swapva_test.pdb"
  "swapva_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swapva_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
