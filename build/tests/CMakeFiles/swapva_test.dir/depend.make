# Empty dependencies file for swapva_test.
# This may be replaced when dependencies are built.
