file(REMOVE_RECURSE
  "CMakeFiles/collectors_test.dir/collectors_test.cc.o"
  "CMakeFiles/collectors_test.dir/collectors_test.cc.o.d"
  "collectors_test"
  "collectors_test.pdb"
  "collectors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collectors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
