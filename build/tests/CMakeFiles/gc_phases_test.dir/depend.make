# Empty dependencies file for gc_phases_test.
# This may be replaced when dependencies are built.
