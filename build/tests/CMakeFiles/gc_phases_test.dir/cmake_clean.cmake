file(REMOVE_RECURSE
  "CMakeFiles/gc_phases_test.dir/gc_phases_test.cc.o"
  "CMakeFiles/gc_phases_test.dir/gc_phases_test.cc.o.d"
  "gc_phases_test"
  "gc_phases_test.pdb"
  "gc_phases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_phases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
