# Empty dependencies file for simkernel_test.
# This may be replaced when dependencies are built.
