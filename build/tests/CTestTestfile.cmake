# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/simkernel_test[1]_include.cmake")
include("/root/repo/build/tests/swapva_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/gc_phases_test[1]_include.cmake")
include("/root/repo/build/tests/collectors_test[1]_include.cmake")
include("/root/repo/build/tests/memsim_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
