# Empty dependencies file for svagc_memsim.
# This may be replaced when dependencies are built.
