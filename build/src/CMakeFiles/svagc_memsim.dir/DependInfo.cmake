
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/cache.cc" "src/CMakeFiles/svagc_memsim.dir/memsim/cache.cc.o" "gcc" "src/CMakeFiles/svagc_memsim.dir/memsim/cache.cc.o.d"
  "/root/repo/src/memsim/dtlb.cc" "src/CMakeFiles/svagc_memsim.dir/memsim/dtlb.cc.o" "gcc" "src/CMakeFiles/svagc_memsim.dir/memsim/dtlb.cc.o.d"
  "/root/repo/src/memsim/hierarchy.cc" "src/CMakeFiles/svagc_memsim.dir/memsim/hierarchy.cc.o" "gcc" "src/CMakeFiles/svagc_memsim.dir/memsim/hierarchy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/svagc_simkernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
