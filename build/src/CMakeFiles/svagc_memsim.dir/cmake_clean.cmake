file(REMOVE_RECURSE
  "CMakeFiles/svagc_memsim.dir/memsim/cache.cc.o"
  "CMakeFiles/svagc_memsim.dir/memsim/cache.cc.o.d"
  "CMakeFiles/svagc_memsim.dir/memsim/dtlb.cc.o"
  "CMakeFiles/svagc_memsim.dir/memsim/dtlb.cc.o.d"
  "CMakeFiles/svagc_memsim.dir/memsim/hierarchy.cc.o"
  "CMakeFiles/svagc_memsim.dir/memsim/hierarchy.cc.o.d"
  "libsvagc_memsim.a"
  "libsvagc_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svagc_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
