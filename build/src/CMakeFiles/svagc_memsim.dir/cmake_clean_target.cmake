file(REMOVE_RECURSE
  "libsvagc_memsim.a"
)
