file(REMOVE_RECURSE
  "CMakeFiles/svagc_runtime.dir/runtime/heap.cc.o"
  "CMakeFiles/svagc_runtime.dir/runtime/heap.cc.o.d"
  "CMakeFiles/svagc_runtime.dir/runtime/heap_snapshot.cc.o"
  "CMakeFiles/svagc_runtime.dir/runtime/heap_snapshot.cc.o.d"
  "CMakeFiles/svagc_runtime.dir/runtime/heap_verifier.cc.o"
  "CMakeFiles/svagc_runtime.dir/runtime/heap_verifier.cc.o.d"
  "CMakeFiles/svagc_runtime.dir/runtime/jvm.cc.o"
  "CMakeFiles/svagc_runtime.dir/runtime/jvm.cc.o.d"
  "CMakeFiles/svagc_runtime.dir/runtime/object.cc.o"
  "CMakeFiles/svagc_runtime.dir/runtime/object.cc.o.d"
  "CMakeFiles/svagc_runtime.dir/runtime/tlab.cc.o"
  "CMakeFiles/svagc_runtime.dir/runtime/tlab.cc.o.d"
  "libsvagc_runtime.a"
  "libsvagc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svagc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
