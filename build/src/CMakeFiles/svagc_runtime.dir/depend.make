# Empty dependencies file for svagc_runtime.
# This may be replaced when dependencies are built.
