file(REMOVE_RECURSE
  "libsvagc_runtime.a"
)
