
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/heap.cc" "src/CMakeFiles/svagc_runtime.dir/runtime/heap.cc.o" "gcc" "src/CMakeFiles/svagc_runtime.dir/runtime/heap.cc.o.d"
  "/root/repo/src/runtime/heap_snapshot.cc" "src/CMakeFiles/svagc_runtime.dir/runtime/heap_snapshot.cc.o" "gcc" "src/CMakeFiles/svagc_runtime.dir/runtime/heap_snapshot.cc.o.d"
  "/root/repo/src/runtime/heap_verifier.cc" "src/CMakeFiles/svagc_runtime.dir/runtime/heap_verifier.cc.o" "gcc" "src/CMakeFiles/svagc_runtime.dir/runtime/heap_verifier.cc.o.d"
  "/root/repo/src/runtime/jvm.cc" "src/CMakeFiles/svagc_runtime.dir/runtime/jvm.cc.o" "gcc" "src/CMakeFiles/svagc_runtime.dir/runtime/jvm.cc.o.d"
  "/root/repo/src/runtime/object.cc" "src/CMakeFiles/svagc_runtime.dir/runtime/object.cc.o" "gcc" "src/CMakeFiles/svagc_runtime.dir/runtime/object.cc.o.d"
  "/root/repo/src/runtime/tlab.cc" "src/CMakeFiles/svagc_runtime.dir/runtime/tlab.cc.o" "gcc" "src/CMakeFiles/svagc_runtime.dir/runtime/tlab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/svagc_simkernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
