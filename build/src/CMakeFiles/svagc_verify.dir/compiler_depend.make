# Empty compiler generated dependencies file for svagc_verify.
# This may be replaced when dependencies are built.
