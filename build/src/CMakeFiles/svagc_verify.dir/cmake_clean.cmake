file(REMOVE_RECURSE
  "CMakeFiles/svagc_verify.dir/verify/differential_oracle.cc.o"
  "CMakeFiles/svagc_verify.dir/verify/differential_oracle.cc.o.d"
  "CMakeFiles/svagc_verify.dir/verify/fault_injector.cc.o"
  "CMakeFiles/svagc_verify.dir/verify/fault_injector.cc.o.d"
  "CMakeFiles/svagc_verify.dir/verify/invariant_registry.cc.o"
  "CMakeFiles/svagc_verify.dir/verify/invariant_registry.cc.o.d"
  "libsvagc_verify.a"
  "libsvagc_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svagc_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
