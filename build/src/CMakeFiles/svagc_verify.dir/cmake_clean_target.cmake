file(REMOVE_RECURSE
  "libsvagc_verify.a"
)
