file(REMOVE_RECURSE
  "CMakeFiles/svagc_gc.dir/gc/applicability.cc.o"
  "CMakeFiles/svagc_gc.dir/gc/applicability.cc.o.d"
  "CMakeFiles/svagc_gc.dir/gc/collector.cc.o"
  "CMakeFiles/svagc_gc.dir/gc/collector.cc.o.d"
  "CMakeFiles/svagc_gc.dir/gc/epsilon.cc.o"
  "CMakeFiles/svagc_gc.dir/gc/epsilon.cc.o.d"
  "CMakeFiles/svagc_gc.dir/gc/forwarding.cc.o"
  "CMakeFiles/svagc_gc.dir/gc/forwarding.cc.o.d"
  "CMakeFiles/svagc_gc.dir/gc/lisp2.cc.o"
  "CMakeFiles/svagc_gc.dir/gc/lisp2.cc.o.d"
  "CMakeFiles/svagc_gc.dir/gc/mark.cc.o"
  "CMakeFiles/svagc_gc.dir/gc/mark.cc.o.d"
  "CMakeFiles/svagc_gc.dir/gc/parallel_gc.cc.o"
  "CMakeFiles/svagc_gc.dir/gc/parallel_gc.cc.o.d"
  "CMakeFiles/svagc_gc.dir/gc/parallel_lisp2.cc.o"
  "CMakeFiles/svagc_gc.dir/gc/parallel_lisp2.cc.o.d"
  "CMakeFiles/svagc_gc.dir/gc/shenandoah_gc.cc.o"
  "CMakeFiles/svagc_gc.dir/gc/shenandoah_gc.cc.o.d"
  "libsvagc_gc.a"
  "libsvagc_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svagc_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
