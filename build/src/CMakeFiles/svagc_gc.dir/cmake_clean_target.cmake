file(REMOVE_RECURSE
  "libsvagc_gc.a"
)
