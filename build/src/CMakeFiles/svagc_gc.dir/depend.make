# Empty dependencies file for svagc_gc.
# This may be replaced when dependencies are built.
