
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gc/applicability.cc" "src/CMakeFiles/svagc_gc.dir/gc/applicability.cc.o" "gcc" "src/CMakeFiles/svagc_gc.dir/gc/applicability.cc.o.d"
  "/root/repo/src/gc/collector.cc" "src/CMakeFiles/svagc_gc.dir/gc/collector.cc.o" "gcc" "src/CMakeFiles/svagc_gc.dir/gc/collector.cc.o.d"
  "/root/repo/src/gc/epsilon.cc" "src/CMakeFiles/svagc_gc.dir/gc/epsilon.cc.o" "gcc" "src/CMakeFiles/svagc_gc.dir/gc/epsilon.cc.o.d"
  "/root/repo/src/gc/forwarding.cc" "src/CMakeFiles/svagc_gc.dir/gc/forwarding.cc.o" "gcc" "src/CMakeFiles/svagc_gc.dir/gc/forwarding.cc.o.d"
  "/root/repo/src/gc/lisp2.cc" "src/CMakeFiles/svagc_gc.dir/gc/lisp2.cc.o" "gcc" "src/CMakeFiles/svagc_gc.dir/gc/lisp2.cc.o.d"
  "/root/repo/src/gc/mark.cc" "src/CMakeFiles/svagc_gc.dir/gc/mark.cc.o" "gcc" "src/CMakeFiles/svagc_gc.dir/gc/mark.cc.o.d"
  "/root/repo/src/gc/parallel_gc.cc" "src/CMakeFiles/svagc_gc.dir/gc/parallel_gc.cc.o" "gcc" "src/CMakeFiles/svagc_gc.dir/gc/parallel_gc.cc.o.d"
  "/root/repo/src/gc/parallel_lisp2.cc" "src/CMakeFiles/svagc_gc.dir/gc/parallel_lisp2.cc.o" "gcc" "src/CMakeFiles/svagc_gc.dir/gc/parallel_lisp2.cc.o.d"
  "/root/repo/src/gc/shenandoah_gc.cc" "src/CMakeFiles/svagc_gc.dir/gc/shenandoah_gc.cc.o" "gcc" "src/CMakeFiles/svagc_gc.dir/gc/shenandoah_gc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/svagc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/svagc_simkernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
