file(REMOVE_RECURSE
  "libsvagc_workloads.a"
)
