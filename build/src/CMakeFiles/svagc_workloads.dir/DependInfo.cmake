
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bisort.cc" "src/CMakeFiles/svagc_workloads.dir/workloads/bisort.cc.o" "gcc" "src/CMakeFiles/svagc_workloads.dir/workloads/bisort.cc.o.d"
  "/root/repo/src/workloads/compress.cc" "src/CMakeFiles/svagc_workloads.dir/workloads/compress.cc.o" "gcc" "src/CMakeFiles/svagc_workloads.dir/workloads/compress.cc.o.d"
  "/root/repo/src/workloads/crypto_aes.cc" "src/CMakeFiles/svagc_workloads.dir/workloads/crypto_aes.cc.o" "gcc" "src/CMakeFiles/svagc_workloads.dir/workloads/crypto_aes.cc.o.d"
  "/root/repo/src/workloads/fft.cc" "src/CMakeFiles/svagc_workloads.dir/workloads/fft.cc.o" "gcc" "src/CMakeFiles/svagc_workloads.dir/workloads/fft.cc.o.d"
  "/root/repo/src/workloads/lru_cache.cc" "src/CMakeFiles/svagc_workloads.dir/workloads/lru_cache.cc.o" "gcc" "src/CMakeFiles/svagc_workloads.dir/workloads/lru_cache.cc.o.d"
  "/root/repo/src/workloads/lu.cc" "src/CMakeFiles/svagc_workloads.dir/workloads/lu.cc.o" "gcc" "src/CMakeFiles/svagc_workloads.dir/workloads/lu.cc.o.d"
  "/root/repo/src/workloads/pagerank.cc" "src/CMakeFiles/svagc_workloads.dir/workloads/pagerank.cc.o" "gcc" "src/CMakeFiles/svagc_workloads.dir/workloads/pagerank.cc.o.d"
  "/root/repo/src/workloads/parallelsort.cc" "src/CMakeFiles/svagc_workloads.dir/workloads/parallelsort.cc.o" "gcc" "src/CMakeFiles/svagc_workloads.dir/workloads/parallelsort.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/svagc_workloads.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/svagc_workloads.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/runner.cc" "src/CMakeFiles/svagc_workloads.dir/workloads/runner.cc.o" "gcc" "src/CMakeFiles/svagc_workloads.dir/workloads/runner.cc.o.d"
  "/root/repo/src/workloads/sigverify.cc" "src/CMakeFiles/svagc_workloads.dir/workloads/sigverify.cc.o" "gcc" "src/CMakeFiles/svagc_workloads.dir/workloads/sigverify.cc.o.d"
  "/root/repo/src/workloads/sor.cc" "src/CMakeFiles/svagc_workloads.dir/workloads/sor.cc.o" "gcc" "src/CMakeFiles/svagc_workloads.dir/workloads/sor.cc.o.d"
  "/root/repo/src/workloads/sparse.cc" "src/CMakeFiles/svagc_workloads.dir/workloads/sparse.cc.o" "gcc" "src/CMakeFiles/svagc_workloads.dir/workloads/sparse.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/svagc_workloads.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/svagc_workloads.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/svagc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/svagc_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/svagc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/svagc_simkernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
