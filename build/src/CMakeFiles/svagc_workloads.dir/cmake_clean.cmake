file(REMOVE_RECURSE
  "CMakeFiles/svagc_workloads.dir/workloads/bisort.cc.o"
  "CMakeFiles/svagc_workloads.dir/workloads/bisort.cc.o.d"
  "CMakeFiles/svagc_workloads.dir/workloads/compress.cc.o"
  "CMakeFiles/svagc_workloads.dir/workloads/compress.cc.o.d"
  "CMakeFiles/svagc_workloads.dir/workloads/crypto_aes.cc.o"
  "CMakeFiles/svagc_workloads.dir/workloads/crypto_aes.cc.o.d"
  "CMakeFiles/svagc_workloads.dir/workloads/fft.cc.o"
  "CMakeFiles/svagc_workloads.dir/workloads/fft.cc.o.d"
  "CMakeFiles/svagc_workloads.dir/workloads/lru_cache.cc.o"
  "CMakeFiles/svagc_workloads.dir/workloads/lru_cache.cc.o.d"
  "CMakeFiles/svagc_workloads.dir/workloads/lu.cc.o"
  "CMakeFiles/svagc_workloads.dir/workloads/lu.cc.o.d"
  "CMakeFiles/svagc_workloads.dir/workloads/pagerank.cc.o"
  "CMakeFiles/svagc_workloads.dir/workloads/pagerank.cc.o.d"
  "CMakeFiles/svagc_workloads.dir/workloads/parallelsort.cc.o"
  "CMakeFiles/svagc_workloads.dir/workloads/parallelsort.cc.o.d"
  "CMakeFiles/svagc_workloads.dir/workloads/registry.cc.o"
  "CMakeFiles/svagc_workloads.dir/workloads/registry.cc.o.d"
  "CMakeFiles/svagc_workloads.dir/workloads/runner.cc.o"
  "CMakeFiles/svagc_workloads.dir/workloads/runner.cc.o.d"
  "CMakeFiles/svagc_workloads.dir/workloads/sigverify.cc.o"
  "CMakeFiles/svagc_workloads.dir/workloads/sigverify.cc.o.d"
  "CMakeFiles/svagc_workloads.dir/workloads/sor.cc.o"
  "CMakeFiles/svagc_workloads.dir/workloads/sor.cc.o.d"
  "CMakeFiles/svagc_workloads.dir/workloads/sparse.cc.o"
  "CMakeFiles/svagc_workloads.dir/workloads/sparse.cc.o.d"
  "CMakeFiles/svagc_workloads.dir/workloads/workload.cc.o"
  "CMakeFiles/svagc_workloads.dir/workloads/workload.cc.o.d"
  "libsvagc_workloads.a"
  "libsvagc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svagc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
