# Empty dependencies file for svagc_workloads.
# This may be replaced when dependencies are built.
