# Empty compiler generated dependencies file for svagc_core.
# This may be replaced when dependencies are built.
