file(REMOVE_RECURSE
  "libsvagc_core.a"
)
