file(REMOVE_RECURSE
  "CMakeFiles/svagc_core.dir/core/minor_copy.cc.o"
  "CMakeFiles/svagc_core.dir/core/minor_copy.cc.o.d"
  "CMakeFiles/svagc_core.dir/core/move_object.cc.o"
  "CMakeFiles/svagc_core.dir/core/move_object.cc.o.d"
  "CMakeFiles/svagc_core.dir/core/svagc_collector.cc.o"
  "CMakeFiles/svagc_core.dir/core/svagc_collector.cc.o.d"
  "libsvagc_core.a"
  "libsvagc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svagc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
