
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/minor_copy.cc" "src/CMakeFiles/svagc_core.dir/core/minor_copy.cc.o" "gcc" "src/CMakeFiles/svagc_core.dir/core/minor_copy.cc.o.d"
  "/root/repo/src/core/move_object.cc" "src/CMakeFiles/svagc_core.dir/core/move_object.cc.o" "gcc" "src/CMakeFiles/svagc_core.dir/core/move_object.cc.o.d"
  "/root/repo/src/core/svagc_collector.cc" "src/CMakeFiles/svagc_core.dir/core/svagc_collector.cc.o" "gcc" "src/CMakeFiles/svagc_core.dir/core/svagc_collector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/svagc_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/svagc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/svagc_simkernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
