file(REMOVE_RECURSE
  "libsvagc_simkernel.a"
)
