file(REMOVE_RECURSE
  "CMakeFiles/svagc_simkernel.dir/simkernel/address_space.cc.o"
  "CMakeFiles/svagc_simkernel.dir/simkernel/address_space.cc.o.d"
  "CMakeFiles/svagc_simkernel.dir/simkernel/cost_model.cc.o"
  "CMakeFiles/svagc_simkernel.dir/simkernel/cost_model.cc.o.d"
  "CMakeFiles/svagc_simkernel.dir/simkernel/machine.cc.o"
  "CMakeFiles/svagc_simkernel.dir/simkernel/machine.cc.o.d"
  "CMakeFiles/svagc_simkernel.dir/simkernel/page_table.cc.o"
  "CMakeFiles/svagc_simkernel.dir/simkernel/page_table.cc.o.d"
  "CMakeFiles/svagc_simkernel.dir/simkernel/phys_mem.cc.o"
  "CMakeFiles/svagc_simkernel.dir/simkernel/phys_mem.cc.o.d"
  "CMakeFiles/svagc_simkernel.dir/simkernel/swapva.cc.o"
  "CMakeFiles/svagc_simkernel.dir/simkernel/swapva.cc.o.d"
  "CMakeFiles/svagc_simkernel.dir/simkernel/tlb.cc.o"
  "CMakeFiles/svagc_simkernel.dir/simkernel/tlb.cc.o.d"
  "libsvagc_simkernel.a"
  "libsvagc_simkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svagc_simkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
