
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simkernel/address_space.cc" "src/CMakeFiles/svagc_simkernel.dir/simkernel/address_space.cc.o" "gcc" "src/CMakeFiles/svagc_simkernel.dir/simkernel/address_space.cc.o.d"
  "/root/repo/src/simkernel/cost_model.cc" "src/CMakeFiles/svagc_simkernel.dir/simkernel/cost_model.cc.o" "gcc" "src/CMakeFiles/svagc_simkernel.dir/simkernel/cost_model.cc.o.d"
  "/root/repo/src/simkernel/machine.cc" "src/CMakeFiles/svagc_simkernel.dir/simkernel/machine.cc.o" "gcc" "src/CMakeFiles/svagc_simkernel.dir/simkernel/machine.cc.o.d"
  "/root/repo/src/simkernel/page_table.cc" "src/CMakeFiles/svagc_simkernel.dir/simkernel/page_table.cc.o" "gcc" "src/CMakeFiles/svagc_simkernel.dir/simkernel/page_table.cc.o.d"
  "/root/repo/src/simkernel/phys_mem.cc" "src/CMakeFiles/svagc_simkernel.dir/simkernel/phys_mem.cc.o" "gcc" "src/CMakeFiles/svagc_simkernel.dir/simkernel/phys_mem.cc.o.d"
  "/root/repo/src/simkernel/swapva.cc" "src/CMakeFiles/svagc_simkernel.dir/simkernel/swapva.cc.o" "gcc" "src/CMakeFiles/svagc_simkernel.dir/simkernel/swapva.cc.o.d"
  "/root/repo/src/simkernel/tlb.cc" "src/CMakeFiles/svagc_simkernel.dir/simkernel/tlb.cc.o" "gcc" "src/CMakeFiles/svagc_simkernel.dir/simkernel/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
