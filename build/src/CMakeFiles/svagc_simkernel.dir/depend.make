# Empty dependencies file for svagc_simkernel.
# This may be replaced when dependencies are built.
