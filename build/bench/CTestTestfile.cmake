# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke "/root/repo/build/bench/smoke_runner" "/root/repo/build/bench")
set_tests_properties(bench_smoke PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;43;add_test;/root/repo/bench/CMakeLists.txt;0;")
