# Empty compiler generated dependencies file for fig09_multicore_opt.
# This may be replaced when dependencies are built.
