file(REMOVE_RECURSE
  "CMakeFiles/fig09_multicore_opt.dir/fig09_multicore_opt.cc.o"
  "CMakeFiles/fig09_multicore_opt.dir/fig09_multicore_opt.cc.o.d"
  "fig09_multicore_opt"
  "fig09_multicore_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_multicore_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
