# Empty dependencies file for fig15_app_throughput.
# This may be replaced when dependencies are built.
