file(REMOVE_RECURSE
  "CMakeFiles/fig08_pmd_caching.dir/fig08_pmd_caching.cc.o"
  "CMakeFiles/fig08_pmd_caching.dir/fig08_pmd_caching.cc.o.d"
  "fig08_pmd_caching"
  "fig08_pmd_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_pmd_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
