# Empty compiler generated dependencies file for fig08_pmd_caching.
# This may be replaced when dependencies are built.
