# Empty dependencies file for fig02_multijvm_problem.
# This may be replaced when dependencies are built.
