file(REMOVE_RECURSE
  "CMakeFiles/fig02_multijvm_problem.dir/fig02_multijvm_problem.cc.o"
  "CMakeFiles/fig02_multijvm_problem.dir/fig02_multijvm_problem.cc.o.d"
  "fig02_multijvm_problem"
  "fig02_multijvm_problem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_multijvm_problem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
