# Empty dependencies file for fig01_phase_breakdown.
# This may be replaced when dependencies are built.
