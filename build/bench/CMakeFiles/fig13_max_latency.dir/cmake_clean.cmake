file(REMOVE_RECURSE
  "CMakeFiles/fig13_max_latency.dir/fig13_max_latency.cc.o"
  "CMakeFiles/fig13_max_latency.dir/fig13_max_latency.cc.o.d"
  "fig13_max_latency"
  "fig13_max_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_max_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
