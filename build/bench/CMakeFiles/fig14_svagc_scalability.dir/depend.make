# Empty dependencies file for fig14_svagc_scalability.
# This may be replaced when dependencies are built.
