file(REMOVE_RECURSE
  "CMakeFiles/fig14_svagc_scalability.dir/fig14_svagc_scalability.cc.o"
  "CMakeFiles/fig14_svagc_scalability.dir/fig14_svagc_scalability.cc.o.d"
  "fig14_svagc_scalability"
  "fig14_svagc_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_svagc_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
