# Empty compiler generated dependencies file for fig06_aggregation.
# This may be replaced when dependencies are built.
