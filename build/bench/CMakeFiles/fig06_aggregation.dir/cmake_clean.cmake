file(REMOVE_RECURSE
  "CMakeFiles/fig06_aggregation.dir/fig06_aggregation.cc.o"
  "CMakeFiles/fig06_aggregation.dir/fig06_aggregation.cc.o.d"
  "fig06_aggregation"
  "fig06_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
