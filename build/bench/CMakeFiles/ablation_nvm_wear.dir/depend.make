# Empty dependencies file for ablation_nvm_wear.
# This may be replaced when dependencies are built.
