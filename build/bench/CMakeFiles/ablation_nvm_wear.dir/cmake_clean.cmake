file(REMOVE_RECURSE
  "CMakeFiles/ablation_nvm_wear.dir/ablation_nvm_wear.cc.o"
  "CMakeFiles/ablation_nvm_wear.dir/ablation_nvm_wear.cc.o.d"
  "ablation_nvm_wear"
  "ablation_nvm_wear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nvm_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
