file(REMOVE_RECURSE
  "CMakeFiles/fig12_avg_latency.dir/fig12_avg_latency.cc.o"
  "CMakeFiles/fig12_avg_latency.dir/fig12_avg_latency.cc.o.d"
  "fig12_avg_latency"
  "fig12_avg_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_avg_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
