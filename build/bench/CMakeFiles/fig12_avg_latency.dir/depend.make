# Empty dependencies file for fig12_avg_latency.
# This may be replaced when dependencies are built.
