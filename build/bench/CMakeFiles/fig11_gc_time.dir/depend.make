# Empty dependencies file for fig11_gc_time.
# This may be replaced when dependencies are built.
