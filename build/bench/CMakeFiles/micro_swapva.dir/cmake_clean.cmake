file(REMOVE_RECURSE
  "CMakeFiles/micro_swapva.dir/micro_swapva.cc.o"
  "CMakeFiles/micro_swapva.dir/micro_swapva.cc.o.d"
  "micro_swapva"
  "micro_swapva.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_swapva.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
