# Empty dependencies file for micro_swapva.
# This may be replaced when dependencies are built.
