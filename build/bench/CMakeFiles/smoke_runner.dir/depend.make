# Empty dependencies file for smoke_runner.
# This may be replaced when dependencies are built.
