file(REMOVE_RECURSE
  "CMakeFiles/smoke_runner.dir/smoke_runner.cc.o"
  "CMakeFiles/smoke_runner.dir/smoke_runner.cc.o.d"
  "smoke_runner"
  "smoke_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoke_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
