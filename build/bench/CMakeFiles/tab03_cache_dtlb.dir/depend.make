# Empty dependencies file for tab03_cache_dtlb.
# This may be replaced when dependencies are built.
