file(REMOVE_RECURSE
  "CMakeFiles/tab03_cache_dtlb.dir/tab03_cache_dtlb.cc.o"
  "CMakeFiles/tab03_cache_dtlb.dir/tab03_cache_dtlb.cc.o.d"
  "tab03_cache_dtlb"
  "tab03_cache_dtlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_cache_dtlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
