file(REMOVE_RECURSE
  "CMakeFiles/fig16_throughput_vs_baselines.dir/fig16_throughput_vs_baselines.cc.o"
  "CMakeFiles/fig16_throughput_vs_baselines.dir/fig16_throughput_vs_baselines.cc.o.d"
  "fig16_throughput_vs_baselines"
  "fig16_throughput_vs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_throughput_vs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
