file(REMOVE_RECURSE
  "CMakeFiles/fig10_threshold.dir/fig10_threshold.cc.o"
  "CMakeFiles/fig10_threshold.dir/fig10_threshold.cc.o.d"
  "fig10_threshold"
  "fig10_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
