file(REMOVE_RECURSE
  "CMakeFiles/fig17_forward_scaling.dir/fig17_forward_scaling.cc.o"
  "CMakeFiles/fig17_forward_scaling.dir/fig17_forward_scaling.cc.o.d"
  "fig17_forward_scaling"
  "fig17_forward_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_forward_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
