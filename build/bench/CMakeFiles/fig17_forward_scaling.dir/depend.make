# Empty dependencies file for fig17_forward_scaling.
# This may be replaced when dependencies are built.
