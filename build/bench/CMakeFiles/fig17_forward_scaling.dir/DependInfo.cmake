
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig17_forward_scaling.cc" "bench/CMakeFiles/fig17_forward_scaling.dir/fig17_forward_scaling.cc.o" "gcc" "bench/CMakeFiles/fig17_forward_scaling.dir/fig17_forward_scaling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/svagc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/svagc_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/svagc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/svagc_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/svagc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/svagc_simkernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
