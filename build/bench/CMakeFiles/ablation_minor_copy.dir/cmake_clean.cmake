file(REMOVE_RECURSE
  "CMakeFiles/ablation_minor_copy.dir/ablation_minor_copy.cc.o"
  "CMakeFiles/ablation_minor_copy.dir/ablation_minor_copy.cc.o.d"
  "ablation_minor_copy"
  "ablation_minor_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_minor_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
