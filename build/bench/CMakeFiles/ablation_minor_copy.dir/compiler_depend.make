# Empty compiler generated dependencies file for ablation_minor_copy.
# This may be replaced when dependencies are built.
