# Empty dependencies file for summary.
# This may be replaced when dependencies are built.
