file(REMOVE_RECURSE
  "CMakeFiles/summary.dir/summary.cc.o"
  "CMakeFiles/summary.dir/summary.cc.o.d"
  "summary"
  "summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
