// Fig. 16: application throughput of SVAGC vs Shenandoah/ParallelGC at
// (a) 1.2x and (b) 2x minimum heap. Paper result: SVAGC outperforms
// ParallelGC / Shenandoah by 30.95% / 37.27% on average at 1.2x, shrinking
// to 15.26% / 16.79% at 2x (bigger heaps mean fewer full GCs).
#include "bench/bench_util.h"
#include "support/stats.h"

using namespace svagc;
using namespace svagc::workloads;

int main() {
  const sim::CostProfile& profile = sim::ProfileXeonGold6130();
  std::printf("== Fig. 16: application throughput vs baselines ==\n");
  bench::PrintProfileHeader(profile);

  for (const double heap_factor : {1.2, 2.0}) {
    std::printf("-- %.1fx minimum heap --\n", heap_factor);
    TablePrinter table({"benchmark", "Shenandoah(ops/s)", "ParallelGC(ops/s)",
                        "SVAGC(ops/s)", "vs PGC", "vs Shen"});
    Summary vs_pgc, vs_shen;
    for (const std::string& name : bench::SmokeSweep(EvaluationWorkloads())) {
      RunConfig config;
      config.workload = name;
      config.profile = &profile;
      config.heap_factor = heap_factor;
      config.iterations = bench::SmokeIterations(0);

      config.collector = CollectorKind::kShenandoah;
      const RunResult shen = RunWorkload(config);
      config.collector = CollectorKind::kParallelGc;
      const RunResult pgc = RunWorkload(config);
      config.collector = CollectorKind::kSvagc;
      const RunResult svagc = RunWorkload(config);

      const double dpgc = 100 * (svagc.throughput_ops / pgc.throughput_ops - 1);
      const double dshen =
          100 * (svagc.throughput_ops / shen.throughput_ops - 1);
      vs_pgc.Add(dpgc);
      vs_shen.Add(dshen);
      table.AddRow({svagc.info.display_name,
                    Format("%.1f", shen.throughput_ops),
                    Format("%.1f", pgc.throughput_ops),
                    Format("%.1f", svagc.throughput_ops), bench::Pct(dpgc),
                    bench::Pct(dshen)});
    }
    bench::Emit(Format("fig16@%.1fx", heap_factor), table);
    std::printf("mean improvement: vs ParallelGC %.2f%%, vs Shenandoah %.2f%%\n",
                vs_pgc.mean(), vs_shen.mean());
    std::printf("paper:            %s\n\n",
                heap_factor < 1.5 ? "30.95% and 37.27% (at 1.2x heap)"
                                  : "15.26% and 16.79% (at 2x heap)");
  }
  return 0;
}
