// Fig. 19 (extension): compaction-plan optimizer ablation. Four
// configurations — optimizer off, run coalescing, coalescing + dense-prefix
// elision, and all three knobs with the adaptive SwapVA threshold — over a
// small-object-heavy heap (bisort), a large-object heap (fft.large), and the
// mixed LRU-cache heap. Expected: coalescing alone cuts compaction modeled
// cycles >= 20% on the small-object shape (runs of adjacent small objects
// become single interior-swappable range moves), while the large-object
// shape is near-neutral (its moves were already SwapVA-sized) and the bench
// regression gate keeps the off-column bit-identical to the pre-optimizer
// pipeline.
#include "bench/bench_util.h"

using namespace svagc;
using namespace svagc::workloads;

namespace {

struct Ablation {
  const char* name;
  gc::PlanOptimizerConfig config;
};

std::vector<Ablation> Ablations() {
  gc::PlanOptimizerConfig coalesce;
  coalesce.coalesce_runs = true;
  gc::PlanOptimizerConfig dense = coalesce;
  dense.dense_prefix = true;
  gc::PlanOptimizerConfig adaptive = dense;
  adaptive.adaptive_threshold = true;
  return {{"off", {}},
          {"coalesce", coalesce},
          {"+dense-prefix", dense},
          {"+adaptive", adaptive}};
}

std::uint64_t Counter(const std::vector<std::pair<std::string, std::uint64_t>>&
                          counters,
                      const char* name) {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return 0;
}

RunResult RunArm(const sim::CostProfile& profile, const char* workload,
                 unsigned iterations, const gc::PlanOptimizerConfig& optimizer) {
  RunConfig config;
  config.workload = workload;
  config.collector = CollectorKind::kSvagc;
  config.profile = &profile;
  config.iterations = iterations;
  config.gc_threads = 8;
  config.plan_optimizer = optimizer;
  return RunWorkload(config);
}

}  // namespace

int main() {
  const sim::CostProfile& profile = sim::ProfileXeonGold6130();
  std::printf("== Fig. 19: compaction-plan optimizer ablation ==\n");
  bench::PrintProfileHeader(profile);

  struct Shape {
    const char* name;
    const char* workload;
    unsigned iterations;
  };
  // lrucache's steady-state residency is low, so the 2-iteration smoke
  // default never triggers a collection; give it enough churn for at least
  // one cycle in smoke mode too.
  const std::vector<Shape> shapes = {
      {"small", "bisort", bench::SmokeIterations(20)},
      {"large", "fft.large", bench::SmokeIterations(20)},
      {"mixed", "lrucache", bench::SmokeIterations(20, 10)}};
  double small_reduction = 0;

  for (const auto& [shape, workload, iterations] : shapes) {
    std::printf("\n-- %s heap (%s) --\n", shape, workload);
    TablePrinter table({"optimizer", "compact kcyc", "fwd kcyc", "gc kcyc",
                        "swapva.calls", "swapped MB", "copied MB",
                        "runs coalesced", "thresh pages"});
    double off_compact = 0;
    for (const Ablation& arm : Ablations()) {
      const RunResult r = RunArm(profile, workload, iterations, arm.config);
      if (std::string(arm.name) == "off") off_compact = r.phase_sum.compact;
      if (std::string(shape) == "small" &&
          std::string(arm.name) == "coalesce" && off_compact > 0) {
        small_reduction = 1.0 - r.phase_sum.compact / off_compact;
      }
      table.AddRow(
          {arm.name, Format("%.0f", r.phase_sum.compact / 1e3),
           Format("%.0f", r.phase_sum.forward / 1e3),
           Format("%.0f", r.gc_total_cycles / 1e3),
           Format("%llu", (unsigned long long)Counter(r.machine_counters,
                                                      "swapva.calls")),
           Format("%.2f", static_cast<double>(r.bytes_swapped) / (1 << 20)),
           Format("%.2f", static_cast<double>(r.bytes_copied) / (1 << 20)),
           Format("%llu", (unsigned long long)Counter(
                              r.gc_counters, "gc.plan.runs_coalesced")),
           Format("%llu", (unsigned long long)Counter(
                              r.gc_counters, "gc.plan.threshold_pages"))});
    }
    bench::Emit(Format("fig19.%s", shape), table);
  }

  std::printf(
      "\ntarget: run coalescing cuts compaction modeled cycles >= 20%% on the "
      "small-object-heavy shape (measured %.1f%%); the off row is "
      "bit-identical to the pre-optimizer pipeline (bench-regression gate).\n",
      small_reduction * 100);
  return 0;
}
