// Fig. 1: execution-time breakdown of the full-GC phases under the serial
// LISP2 prototype, for FFT.large and Sparse.large (i5-7600 testbed).
// Paper result: compaction accounts for 79.33% (Sparse.large) to 84.76%
// (FFT.large) of total GC time.
#include "bench/bench_util.h"

using namespace svagc;
using namespace svagc::workloads;

int main() {
  const sim::CostProfile& profile = sim::ProfileCorei5_7600();
  std::printf("== Fig. 1: Full GC phase breakdown (serial LISP2) ==\n");
  bench::PrintProfileHeader(profile);

  TablePrinter table({"benchmark", "GCs", "mark%", "forward%", "adjust%",
                      "compact%", "other%", "total(ms)"});
  for (const char* name : {"fft.large", "sparse.large"}) {
    RunConfig config;
    config.workload = name;
    config.collector = CollectorKind::kSerialLisp2;
    config.profile = &profile;
    config.iterations = bench::SmokeIterations(0);  // 0 = workload default
    const RunResult r = RunWorkload(config);
    const rt::GcCycleRecord& sum = r.phase_sum;
    const double total = sum.Total();
    table.AddRow({r.info.display_name, Format("%llu", (unsigned long long)r.gc_count),
                  bench::Pct(100 * sum.mark / total),
                  bench::Pct(100 * sum.forward / total),
                  bench::Pct(100 * sum.adjust / total),
                  bench::Pct(100 * sum.compact / total),
                  bench::Pct(100 * sum.other / total),
                  bench::Ms(total, profile)});
  }
  bench::Emit("fig01", table);
  std::printf(
      "\npaper: compaction dominates — 79.33%% (Sparse.large) to 84.76%% "
      "(FFT.large) of full-GC time.\n");
  return 0;
}
