// Table III: cache and DTLB miss rates with memmove vs SwapVA at 1.2x (2x)
// minimum heap, measured by the trace-driven memory-hierarchy simulator
// (the paper samples the same counters with `perf`). Paper result: SwapVA
// pollutes the caches and the DTLB less than memmove in almost every
// benchmark (geomean cache misses 69.3% -> 65.7%; DTLB 1.28% -> 0.52% at
// 1.2x heap).
#include "bench/bench_util.h"
#include "memsim/hierarchy.h"
#include "support/stats.h"

using namespace svagc;
using namespace svagc::workloads;

namespace {

struct MissRates {
  double cache;
  double dtlb;
};

MissRates Measure(const std::string& workload, CollectorKind collector,
                  double heap_factor) {
  // Heap sizes are scaled ~1000x below the paper's; use the matching scaled
  // hierarchy so heap >> LLC and heap >> TLB reach, as on the testbed.
  memsim::MemoryHierarchy hierarchy(
      memsim::HierarchyConfig::ScaledForSmallHeaps());
  RunConfig config;
  config.workload = workload;
  config.collector = collector;
  config.heap_factor = heap_factor;
  config.iterations = bench::SmokeIterations(0);
  config.trace = &hierarchy;
  (void)RunWorkload(config);
  return {hierarchy.LlcMissRatePercent(), hierarchy.DtlbMissRatePercent()};
}

}  // namespace

int main() {
  std::printf(
      "== Table III: cache & DTLB miss rates, memmove vs SwapVA, at 1.2x "
      "(2x) min heap ==\n");
  TablePrinter table({"Benchmark", "cache% memmove", "cache% SwapVA",
                      "dtlb% memmove", "dtlb% SwapVA"});
  GeoMean gm_cache_move, gm_cache_swap, gm_dtlb_move, gm_dtlb_swap;
  double mins[4] = {1e9, 1e9, 1e9, 1e9};
  double maxs[4] = {0, 0, 0, 0};
  for (const std::string& name : bench::SmokeSweep(EvaluationWorkloads())) {
    const MissRates move12 = Measure(name, CollectorKind::kSvagcNoSwap, 1.2);
    const MissRates move20 = Measure(name, CollectorKind::kSvagcNoSwap, 2.0);
    const MissRates swap12 = Measure(name, CollectorKind::kSvagc, 1.2);
    const MissRates swap20 = Measure(name, CollectorKind::kSvagc, 2.0);
    const double cells[4] = {move12.cache, swap12.cache, move12.dtlb,
                             swap12.dtlb};
    for (int i = 0; i < 4; ++i) {
      mins[i] = std::min(mins[i], cells[i]);
      maxs[i] = std::max(maxs[i], cells[i]);
    }
    gm_cache_move.Add(std::max(0.01, move12.cache));
    gm_cache_swap.Add(std::max(0.01, swap12.cache));
    gm_dtlb_move.Add(std::max(0.001, move12.dtlb));
    gm_dtlb_swap.Add(std::max(0.001, swap12.dtlb));
    const auto workload = MakeWorkload(name);
    table.AddRow({workload->info().display_name,
                  Format("%.2f(%.2f)", move12.cache, move20.cache),
                  Format("%.2f(%.2f)", swap12.cache, swap20.cache),
                  Format("%.3f(%.3f)", move12.dtlb, move20.dtlb),
                  Format("%.3f(%.3f)", swap12.dtlb, swap20.dtlb)});
  }
  table.AddRow({"min", Format("%.2f", mins[0]), Format("%.2f", mins[1]),
                Format("%.3f", mins[2]), Format("%.3f", mins[3])});
  table.AddRow({"max", Format("%.2f", maxs[0]), Format("%.2f", maxs[1]),
                Format("%.3f", maxs[2]), Format("%.3f", maxs[3])});
  table.AddRow({"geomean", Format("%.2f", gm_cache_move.Value()),
                Format("%.2f", gm_cache_swap.Value()),
                Format("%.3f", gm_dtlb_move.Value()),
                Format("%.3f", gm_dtlb_swap.Value())});
  bench::Emit("tab03", table);
  std::printf(
      "\npaper (1.2x heap): geomean cache misses 69.32%% (memmove) vs "
      "65.71%% (SwapVA); DTLB 1.28%% vs 0.52%%.\n");
  return 0;
}
