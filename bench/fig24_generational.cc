// Fig. 24: generational front end — zone-per-thread nursery, remembered-set
// minor GC, and SWAM-style pressure-driven triggering (ROADMAP item 4).
//
// Three arms per workload at 2x minimum heap:
//
//   gen-off         the stock full-heap SVAGC collector: every collection is
//                   a full LISP2 cycle triggered by heap exhaustion.
//   minor-only      nursery + remembered-set scavenges; full GCs happen only
//                   when the old space itself fills (pressure escalation off).
//   minor+pressure  production configuration: the PressureGovernor
//                   additionally escalates minor→full on old-space
//                   occupancy/slope and promotion-rate signals, so full
//                   cycles run before exhaustion forces them.
//
// The headline claim: on churn-heavy workloads (LRUCache, PageRank) the
// nursery absorbs the short-lived allocation traffic, cutting full-GC count
// by at least 3x and total modeled GC cycles outright — asserted below, not
// just printed.
//
// Env knobs: SVAGC_FIG24_ITERS pins the iteration count;
// SVAGC_FIG24_YOUNG_PCT / SVAGC_FIG24_TENURE override the nursery fraction
// and tenuring age for one-off sweeps (the defaults come from RunConfig).
#include "bench/bench_util.h"

using namespace svagc;
using namespace svagc::workloads;

namespace {

struct Arm {
  const char* label;
  bool generational;
  bool pressure;
};

constexpr Arm kArms[] = {
    {"gen-off", false, false},
    {"minor-only", true, false},
    {"minor+pressure", true, true},
};

RunResult RunArm(const std::string& workload, const Arm& arm,
                 unsigned iterations, const sim::CostProfile& profile) {
  RunConfig config;
  config.workload = workload;
  config.profile = &profile;
  config.heap_factor = 2.0;
  config.iterations = iterations;
  config.collector = CollectorKind::kSvagc;
  config.generational.enabled = arm.generational;
  config.generational.pressure = arm.pressure;
  if (const unsigned pct = bench::EnvUnsigned("SVAGC_FIG24_YOUNG_PCT", 0)) {
    config.generational.young_fraction = pct / 100.0;
  }
  if (const unsigned age = bench::EnvUnsigned("SVAGC_FIG24_TENURE", 0)) {
    config.generational.tenure_age = age;
  }
  return RunWorkload(config);
}

}  // namespace

int main() {
  const sim::CostProfile& profile = sim::ProfileXeonGold6130();
  std::printf(
      "== Fig. 24: generational front end — full-GC count, GC cycles, "
      "throughput (2x min heap) ==\n");
  bench::PrintProfileHeader(profile);

  TablePrinter table({"benchmark", "arm", "full GCs", "minor GCs",
                      "GC(kcyc)", "throughput(op/s)", "promoted(MiB)",
                      "premature", "mk/fw/aj/cp/ot(kcyc)", "cp/sw(MiB)"});

  const unsigned iters_override = bench::EnvUnsigned("SVAGC_FIG24_ITERS", 0);
  struct Judged {
    std::string name;
    RunResult off, gen;
  };
  std::vector<Judged> judged;
  for (const std::string& name : std::vector<std::string>{
           "lrucache", "pagerank", "compress"}) {
    const unsigned iterations =
        iters_override != 0 ? iters_override
                            : bench::SmokeIterations(/*full=*/120, /*smoke=*/6);
    RunResult results[3];
    for (unsigned a = 0; a < 3; ++a) {
      results[a] = RunArm(name, kArms[a], iterations, profile);
      const RunResult& r = results[a];
      table.AddRow({r.info.display_name, kArms[a].label,
                    Format("%llu", (unsigned long long)r.gc_full_count),
                    Format("%llu", (unsigned long long)r.gc_minor_count),
                    Format("%.1f", r.gc_total_cycles / 1e3),
                    Format("%.0f", r.throughput_ops),
                    Format("%.1f", r.promoted_bytes / (1024.0 * 1024.0)),
                    Format("%llu", (unsigned long long)r.premature_tenures),
                    Format("%.0f/%.0f/%.0f/%.0f/%.0f", r.phase_sum.mark / 1e3,
                           r.phase_sum.forward / 1e3, r.phase_sum.adjust / 1e3,
                           r.phase_sum.compact / 1e3, r.phase_sum.other / 1e3),
                    Format("%.1f/%.1f", r.bytes_copied / (1024.0 * 1024.0),
                           r.bytes_swapped / (1024.0 * 1024.0))});
      if (a > 0 && (name == "lrucache" || name == "pagerank")) {
        judged.push_back({name + "/" + kArms[a].label, results[0], r});
      }
    }
  }
  bench::Emit("fig24", table);
  std::fflush(stdout);

  // Acceptance (churn workloads, full-length runs): the nursery cuts
  // full-GC count at least 3x and total modeled GC cycles outright, for
  // both generational arms. Only judged when the baseline collects often
  // enough for the ratio to be meaningful (smoke runs collect once or
  // twice). Emitted after the table so a failure still shows the data.
  for (const Judged& j : judged) {
    if (j.off.gc_full_count < 3) continue;
    std::printf("check %s: full %llu->%llu minor %llu cycles %.0fk->%.0fk\n",
                j.name.c_str(), (unsigned long long)j.off.gc_full_count,
                (unsigned long long)j.gen.gc_full_count,
                (unsigned long long)j.gen.gc_minor_count,
                j.off.gc_total_cycles / 1e3, j.gen.gc_total_cycles / 1e3);
    SVAGC_CHECK(j.gen.gc_full_count * 3 <= j.off.gc_full_count);
    SVAGC_CHECK(j.gen.gc_total_cycles < j.off.gc_total_cycles);
    SVAGC_CHECK(j.gen.gc_minor_count > 0);
  }

  std::printf(
      "\nminor scavenges trace roots + remembered set only, so their cost "
      "scales with the live young set, not the heap; large young survivors "
      "tenure via SwapVA (Table I row 2). Pressure escalation spends a full "
      "cycle early to keep the old-space slope from forcing back-to-back "
      "exhaustion GCs.\n");
  return 0;
}
