// Bench smoke harness: runs every figure/table binary in smoke mode
// (SVAGC_BENCH_SMOKE=1 shrinks sweeps to seconds, SVAGC_BENCH_JSON=1
// switches tables to JSON lines) and validates that each one exits cleanly
// and prints at least one well-formed JSON table with an "id" field. Wired
// as the `bench_smoke` ctest and the `bench-smoke` build target, so bench
// bit-rot fails CI instead of being discovered at figure-regeneration time.
//
// Usage: smoke_runner [bench-dir] [--trace-dir=DIR] [bench-name...]
//   --trace-dir=DIR  run each bench with SVAGC_TRACE_OUT=DIR/<name>.trace.json
//                    and validate the emitted Perfetto trace against the
//                    telemetry schema (the `telemetry_smoke` ctest).
//   bench-name...    restrict the run to the named harnesses.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/trace_json.h"

namespace {

// Minimal validating JSON parser — accepts exactly the RFC 8259 grammar the
// TablePrinter emits; rejects trailing garbage.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') return ++pos_, true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::strchr("\"\\/bfnrt", esc) == nullptr) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               text_[pos_ - 1]));
  }

  bool Literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

struct BenchOutcome {
  bool ran_ok = false;
  unsigned json_tables = 0;
  unsigned malformed = 0;
  std::string trace_error;  // non-empty when trace validation failed
  std::size_t trace_events = 0;
};

BenchOutcome RunBench(const std::string& dir, const char* name,
                      const std::string& trace_path) {
  BenchOutcome outcome;
  std::string cmd = dir + "/" + name + " 2>&1";
  if (!trace_path.empty()) {
    cmd = "SVAGC_TRACE_OUT=" + trace_path + " " + cmd;
  }
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return outcome;
  std::string line;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) {
    line = buf;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    // Table lines are the ones starting with '{'; prose headers/footers are
    // allowed to pass through untouched.
    if (line.empty() || line[0] != '{') continue;
    if (JsonValidator(line).Valid() &&
        line.find("\"id\": ") != std::string::npos) {
      ++outcome.json_tables;
    } else {
      ++outcome.malformed;
    }
  }
  outcome.ran_ok = pclose(pipe) == 0;

  if (!trace_path.empty()) {
    std::ifstream in(trace_path);
    if (!in) {
      outcome.trace_error = "trace file not written";
    } else {
      std::ostringstream text;
      text << in.rdbuf();
      outcome.trace_error = svagc::telemetry::ValidateTraceJson(text.str());
      if (outcome.trace_error.empty()) {
        std::string parse_error;
        const auto events =
            svagc::telemetry::ParseTraceJson(text.str(), &parse_error);
        if (!events.has_value()) {
          outcome.trace_error = "trace re-parse failed: " + parse_error;
        } else if (events->empty()) {
          outcome.trace_error = "trace contains no events";
        } else {
          outcome.trace_events = events->size();
        }
      }
    }
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::string trace_dir;
  std::vector<std::string> filter;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-dir=", 0) == 0) {
      trace_dir = arg.substr(std::strlen("--trace-dir="));
    } else if (dir.empty()) {
      dir = arg;
    } else {
      filter.push_back(arg);
    }
  }
  if (dir.empty()) dir = ".";
  setenv("SVAGC_BENCH_SMOKE", "1", 1);
  setenv("SVAGC_BENCH_JSON", "1", 1);

  // Every table-printing harness; micro_swapva (google-benchmark) excluded.
  const char* const benches[] = {
      "fig01_phase_breakdown",
      "fig02_multijvm_problem",
      "fig06_aggregation",
      "fig08_pmd_caching",
      "fig09_multicore_opt",
      "fig10_threshold",
      "fig11_gc_time",
      "fig12_avg_latency",
      "fig13_max_latency",
      "fig14_svagc_scalability",
      "fig15_app_throughput",
      "fig16_throughput_vs_baselines",
      "fig17_forward_scaling",
      "fig18_huge_swap",
      "fig19_plan_optimizer",
      "fig20_fleet_arbiter",
      "fig21_translation_backends",
      "fig22_concurrent_pause",
      "fig23_far_tier",
      "fig24_generational",
      "tab02_config",
      "tab03_cache_dtlb",
      "ablation_minor_copy",
      "ablation_nvm_wear",
      "summary",
  };

  unsigned failures = 0;
  unsigned ran = 0;
  for (const char* name : benches) {
    if (!filter.empty()) {
      bool wanted = false;
      for (const std::string& f : filter) wanted = wanted || f == name;
      if (!wanted) continue;
    }
    ++ran;
    std::string trace_path;
    if (!trace_dir.empty()) {
      trace_path = trace_dir + "/" + name + ".trace.json";
      std::remove(trace_path.c_str());
    }
    const BenchOutcome outcome = RunBench(dir, name, trace_path);
    const bool ok = outcome.ran_ok && outcome.json_tables >= 1 &&
                    outcome.malformed == 0 && outcome.trace_error.empty();
    std::printf("[%s] %-32s tables=%u malformed=%u%s", ok ? "ok" : "FAIL",
                name, outcome.json_tables, outcome.malformed,
                outcome.ran_ok ? "" : " (non-zero exit)");
    if (!trace_path.empty()) {
      if (outcome.trace_error.empty()) {
        std::printf(" trace_events=%zu", outcome.trace_events);
      } else {
        std::printf(" trace: %s", outcome.trace_error.c_str());
      }
    }
    std::printf("\n");
    if (!ok) ++failures;
  }
  if (ran == 0) {
    std::printf("no bench harness matched the given filter\n");
    return 1;
  }
  if (failures != 0) {
    std::printf("%u bench harness(es) failed smoke validation\n", failures);
    return 1;
  }
  std::printf("all %u bench harnesses emitted valid JSON in smoke mode\n", ran);
  return 0;
}
