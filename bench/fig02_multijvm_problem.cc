// Fig. 2: the scalability problem — multiple single-threaded LRU-cache JVMs
// under ParallelGC on the 32-core machine (4 GC threads each). Paper
// result: both GC latency (max and total) and application execution time
// grow significantly with the JVM count.
#include "bench/bench_util.h"

using namespace svagc;
using namespace svagc::workloads;

int main() {
  const sim::CostProfile& profile = sim::ProfileXeonGold6130();
  std::printf("== Fig. 2: multi-JVM scalability of ParallelGC (LRUCache) ==\n");
  bench::PrintProfileHeader(profile);

  TablePrinter table({"JVMs", "app time(ms)", "GC total(ms)", "GC max(ms)",
                      "GC p99(ms)", "app growth", "GC growth"});
  double base_app = 0;
  double base_gc = 0;
  for (unsigned jvms : bench::SmokeSweep<unsigned>({1, 2, 4, 8, 16, 32})) {
    RunConfig config;
    config.workload = "lrucache";
    config.collector = CollectorKind::kParallelGc;
    config.profile = &profile;
    config.iterations = bench::SmokeIterations(20);
    config.gc_threads = 4;  // paper: GCThreadsCount = 4 per JVM
    const auto results = RunMultiJvm(config, jvms);
    double app = 0;
    double gc_total = 0;
    double gc_max = 0;
    for (const RunResult& r : results) {
      app += r.app_cycles;
      gc_total += r.gc_total_cycles;
      gc_max = std::max(gc_max, r.gc_max_cycles);
    }
    app /= jvms;  // mean per-JVM application time
    gc_total /= jvms;
    if (jvms == 1) {
      base_app = app;
      base_gc = gc_total;
    }
    const bench::TenantPauses pauses = bench::WorstTenantPauses(results);
    table.AddRow({Format("%u", jvms), bench::Ms(app, profile),
                  bench::Ms(gc_total, profile), bench::Ms(gc_max, profile),
                  bench::Ms(pauses.p99_cycles, profile),
                  bench::Pct(100 * (app / base_app - 1)),
                  bench::Pct(100 * (gc_total / base_gc - 1))});
  }
  bench::Emit("fig02", table);
  std::printf(
      "\npaper: with ParallelGC both GC latency (max and total) and app time "
      "increase significantly as JVMs are added.\n");
  return 0;
}
