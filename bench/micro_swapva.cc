// Google-benchmark microbenchmarks of the simulated kernel itself: real
// host wall time of the SwapVA machinery (page-table walks, split-PTL
// locking, PTE exchange) vs real byte copying through the address space.
// These complement the modeled-cycle figure harnesses: they demonstrate
// that the zero-copy property is real in this implementation too — swapping
// PTEs of N pages is O(N) pointer work while memmove is O(N * 4096) byte
// work. Custom counters report the modeled cycles alongside.
#include <benchmark/benchmark.h>

#include "simkernel/swapva.h"

namespace {

using namespace svagc;

struct Fixture {
  sim::Machine machine;
  sim::Kernel kernel{machine};
  sim::PhysicalMemory phys{4096ULL << sim::kPageShift};
  sim::AddressSpace as{machine, phys};
  static constexpr sim::vaddr_t kBase = 1ULL << 32;

  explicit Fixture(
      sim::TranslationBackend backend = sim::TranslationBackend::kRadix)
      : machine(4, sim::ProfileXeonGold6130(), backend) {
    as.MapRange(kBase, 2048ULL << sim::kPageShift);
  }
};

// Second arg selects the translation backend (0 = radix, 1 = hashed), so
// the host-time and modeled-cycle columns compare the directory walk
// against the O(1) bucket relink directly.
void BM_SwapVa(benchmark::State& state) {
  Fixture f(static_cast<sim::TranslationBackend>(state.range(1)));
  const auto pages = static_cast<std::uint64_t>(state.range(0));
  sim::SwapVaOptions opts;
  sim::CpuContext ctx(f.machine, 0);
  const sim::vaddr_t a = Fixture::kBase;
  const sim::vaddr_t b = Fixture::kBase + (1024ULL << sim::kPageShift);
  for (auto _ : state) {
    f.kernel.SysSwapVa(f.as, ctx, a, b, pages, opts);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pages << sim::kPageShift));
  state.counters["modeled_cycles_per_op"] =
      ctx.account.total() / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SwapVa)
    ->ArgNames({"pages", "hashed"})
    ->ArgsProduct({{1, 10, 64, 256}, {0, 1}});

void BM_SwapVaNoPmdCache(benchmark::State& state) {
  Fixture f;
  const auto pages = static_cast<std::uint64_t>(state.range(0));
  sim::SwapVaOptions opts;
  opts.pmd_caching = false;
  sim::CpuContext ctx(f.machine, 0);
  for (auto _ : state) {
    f.kernel.SysSwapVa(f.as, ctx, Fixture::kBase,
                       Fixture::kBase + (1024ULL << sim::kPageShift), pages,
                       opts);
  }
  state.counters["modeled_cycles_per_op"] =
      ctx.account.total() / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SwapVaNoPmdCache)->Arg(64)->Arg(256);

void BM_Memmove(benchmark::State& state) {
  Fixture f;
  const auto pages = static_cast<std::uint64_t>(state.range(0));
  sim::CpuContext ctx(f.machine, 0);
  for (auto _ : state) {
    f.as.CopyBytes(ctx, Fixture::kBase,
                   Fixture::kBase + (1024ULL << sim::kPageShift),
                   pages << sim::kPageShift);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pages << sim::kPageShift));
  state.counters["modeled_cycles_per_op"] =
      ctx.account.total() / static_cast<double>(state.iterations());
}
BENCHMARK(BM_Memmove)->Arg(1)->Arg(10)->Arg(64)->Arg(256);

void BM_SwapVaOverlap(benchmark::State& state) {
  Fixture f;
  const auto pages = static_cast<std::uint64_t>(state.range(0));
  const std::uint64_t delta = pages / 2;
  sim::SwapVaOptions opts;
  sim::CpuContext ctx(f.machine, 0);
  for (auto _ : state) {
    f.kernel.SysSwapVa(f.as, ctx, Fixture::kBase,
                       Fixture::kBase + (delta << sim::kPageShift), pages,
                       opts);
  }
  state.counters["modeled_cycles_per_op"] =
      ctx.account.total() / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SwapVaOverlap)->Arg(16)->Arg(256);

void BM_AggregatedVec(benchmark::State& state) {
  Fixture f(static_cast<sim::TranslationBackend>(state.range(1)));
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::vector<sim::SwapRequest> requests;
  for (std::size_t i = 0; i < batch; ++i) {
    requests.push_back({Fixture::kBase + (i * 8) * sim::kPageSize,
                        Fixture::kBase + ((1024 + i * 8) << sim::kPageShift),
                        4});
  }
  sim::SwapVaOptions opts;
  sim::CpuContext ctx(f.machine, 0);
  for (auto _ : state) {
    f.kernel.SysSwapVaVec(f.as, ctx, requests, opts);
  }
  state.counters["modeled_cycles_per_op"] =
      ctx.account.total() / static_cast<double>(state.iterations());
}
BENCHMARK(BM_AggregatedVec)
    ->ArgNames({"batch", "hashed"})
    ->ArgsProduct({{8, 64}, {0, 1}});

}  // namespace

BENCHMARK_MAIN();
