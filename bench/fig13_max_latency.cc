// Fig. 13: maximum full-GC pause of SVAGC vs Shenandoah and ParallelGC at
// (a) 1.2x and (b) 2x minimum heap. Paper result: SVAGC's max pause is
// 4.49x / 18.25x lower than ParallelGC / Shenandoah at 1.2x, and
// 3.60x / 12.24x at 2x — larger heaps do not rescue the baselines.
#include "bench/bench_util.h"
#include "support/stats.h"

using namespace svagc;
using namespace svagc::workloads;

int main() {
  const sim::CostProfile& profile = sim::ProfileXeonGold6130();
  std::printf("== Fig. 13: maximum full-GC pause vs baselines ==\n");
  bench::PrintProfileHeader(profile);

  for (const double heap_factor : {1.2, 2.0}) {
    std::printf("-- %.1fx minimum heap --\n", heap_factor);
    TablePrinter table({"benchmark", "Shenandoah(ms)", "ParallelGC(ms)",
                        "SVAGC(ms)", "PGC/SVAGC", "Shen/SVAGC"});
    GeoMean pgc_ratio, shen_ratio;
    for (const std::string& name : bench::SmokeSweep(EvaluationWorkloads())) {
      RunConfig config;
      config.workload = name;
      config.profile = &profile;
      config.heap_factor = heap_factor;
      config.iterations = bench::SmokeIterations(0);

      config.collector = CollectorKind::kShenandoah;
      const RunResult shen = RunWorkload(config);
      config.collector = CollectorKind::kParallelGc;
      const RunResult pgc = RunWorkload(config);
      config.collector = CollectorKind::kSvagc;
      const RunResult svagc = RunWorkload(config);

      if (svagc.gc_max_cycles > 0) {
        pgc_ratio.Add(pgc.gc_max_cycles / svagc.gc_max_cycles);
        shen_ratio.Add(shen.gc_max_cycles / svagc.gc_max_cycles);
      }
      table.AddRow({svagc.info.display_name,
                    bench::Ms(shen.gc_max_cycles, profile),
                    bench::Ms(pgc.gc_max_cycles, profile),
                    bench::Ms(svagc.gc_max_cycles, profile),
                    Format("%.2fx", pgc.gc_max_cycles / svagc.gc_max_cycles),
                    Format("%.2fx", shen.gc_max_cycles / svagc.gc_max_cycles)});
    }
    bench::Emit(Format("fig13@%.1fx", heap_factor), table);
    std::printf("geomean: ParallelGC/SVAGC = %.2fx, Shenandoah/SVAGC = %.2fx\n",
                pgc_ratio.Value(), shen_ratio.Value());
    std::printf("paper:   %s\n\n",
                heap_factor < 1.5 ? "4.49x and 18.25x (at 1.2x heap)"
                                  : "3.60x and 12.24x (at 2x heap)");
  }
  return 0;
}
