// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "simkernel/cost_model.h"
#include "support/table.h"
#include "workloads/runner.h"

namespace svagc::bench {

inline bool EnvFlag(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

// SVAGC_BENCH_SMOKE=1 shrinks every harness's sweep to a seconds-long
// validation run (the bench-smoke ctest); SVAGC_BENCH_JSON=1 switches table
// output to one machine-checkable JSON line per table.
inline bool SmokeMode() { return EnvFlag("SVAGC_BENCH_SMOKE"); }
inline bool JsonMode() { return EnvFlag("SVAGC_BENCH_JSON"); }

// Tables go through Emit so every harness honors SVAGC_BENCH_JSON.
inline void Emit(const std::string& id, const TablePrinter& table) {
  if (JsonMode()) {
    table.PrintJson(id);
  } else {
    table.Print();
  }
}

// Iteration count / sweep shrinkers for smoke mode.
inline unsigned SmokeIterations(unsigned full, unsigned smoke = 2) {
  return SmokeMode() ? smoke : full;
}

template <typename T>
std::vector<T> SmokeSweep(std::vector<T> full) {
  if (SmokeMode() && full.size() > 2) return {full.front(), full.back()};
  return full;
}

// Every harness prints the cost-model profile it ran under so results are
// auditable against simkernel/cost_model.cc.
inline void PrintProfileHeader(const sim::CostProfile& profile) {
  std::printf(
      "cost profile: %s (%.1f GHz) — syscall=%.0f walk=%.0f pte=%.0f "
      "lock=%.0f update=%.0f flushL=%.0f flushP=%.0f ipi=%.0f/%.0f "
      "copy=%.3f/%.3f cyc/B\n",
      profile.name.c_str(), profile.ghz, profile.syscall_entry,
      profile.pagetable_access, profile.pte_access, profile.pte_lock_pair,
      profile.pte_update, profile.tlb_flush_local, profile.tlb_flush_page,
      profile.ipi_send, profile.ipi_handle, profile.copy_per_byte_cached,
      profile.copy_per_byte_dram);
}

inline std::string Ms(double cycles, const sim::CostProfile& profile) {
  return Format("%.3f", cycles / (profile.ghz * 1e9) * 1e3);
}

inline std::string Pct(double x) { return Format("%.1f%%", x); }

}  // namespace svagc::bench
