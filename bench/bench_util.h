// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <cstdio>
#include <string>

#include "simkernel/cost_model.h"
#include "support/table.h"
#include "workloads/runner.h"

namespace svagc::bench {

// Every harness prints the cost-model profile it ran under so results are
// auditable against simkernel/cost_model.cc.
inline void PrintProfileHeader(const sim::CostProfile& profile) {
  std::printf(
      "cost profile: %s (%.1f GHz) — syscall=%.0f walk=%.0f pte=%.0f "
      "lock=%.0f update=%.0f flushL=%.0f flushP=%.0f ipi=%.0f/%.0f "
      "copy=%.3f/%.3f cyc/B\n",
      profile.name.c_str(), profile.ghz, profile.syscall_entry,
      profile.pagetable_access, profile.pte_access, profile.pte_lock_pair,
      profile.pte_update, profile.tlb_flush_local, profile.tlb_flush_page,
      profile.ipi_send, profile.ipi_handle, profile.copy_per_byte_cached,
      profile.copy_per_byte_dram);
}

inline std::string Ms(double cycles, const sim::CostProfile& profile) {
  return Format("%.3f", cycles / (profile.ghz * 1e9) * 1e3);
}

inline std::string Pct(double x) { return Format("%.1f%%", x); }

}  // namespace svagc::bench
