// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "simkernel/cost_model.h"
#include "support/table.h"
#include "workloads/runner.h"

namespace svagc::bench {

inline bool EnvFlag(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

// SVAGC_BENCH_SMOKE=1 shrinks every harness's sweep to a seconds-long
// validation run (the bench-smoke ctest); SVAGC_BENCH_JSON=1 switches table
// output to one machine-checkable JSON line per table.
inline bool SmokeMode() { return EnvFlag("SVAGC_BENCH_SMOKE"); }
inline bool JsonMode() { return EnvFlag("SVAGC_BENCH_JSON"); }

// Tables go through Emit so every harness honors SVAGC_BENCH_JSON.
inline void Emit(const std::string& id, const TablePrinter& table) {
  if (JsonMode()) {
    table.PrintJson(id);
  } else {
    table.Print();
  }
}

// Iteration count / sweep shrinkers for smoke mode.
inline unsigned SmokeIterations(unsigned full, unsigned smoke = 2) {
  return SmokeMode() ? smoke : full;
}

template <typename T>
std::vector<T> SmokeSweep(std::vector<T> full) {
  if (SmokeMode() && full.size() > 2) return {full.front(), full.back()};
  return full;
}

// Every harness prints the cost-model profile it ran under so results are
// auditable against simkernel/cost_model.cc.
inline void PrintProfileHeader(const sim::CostProfile& profile) {
  std::printf(
      "cost profile: %s (%.1f GHz) — syscall=%.0f walk=%.0f pte=%.0f "
      "lock=%.0f update=%.0f flushL=%.0f flushP=%.0f ipi=%.0f/%.0f "
      "copy=%.3f/%.3f cyc/B\n",
      profile.name.c_str(), profile.ghz, profile.syscall_entry,
      profile.pagetable_access, profile.pte_access, profile.pte_lock_pair,
      profile.pte_update, profile.tlb_flush_local, profile.tlb_flush_page,
      profile.ipi_send, profile.ipi_handle, profile.copy_per_byte_cached,
      profile.copy_per_byte_dram);
}

inline std::string Ms(double cycles, const sim::CostProfile& profile) {
  return Format("%.3f", cycles / (profile.ghz * 1e9) * 1e3);
}

inline std::string Pct(double x) { return Format("%.1f%%", x); }

// Environment overrides for fleet-mode harnesses (fig20): SVAGC_TENANTS,
// SVAGC_FLEET_SLO_MS, SVAGC_FLEET_K.
inline unsigned EnvUnsigned(const char* name, unsigned fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return static_cast<unsigned>(std::strtoul(value, nullptr, 10));
}

inline double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return std::strtod(value, nullptr);
}

// Worst-tenant pause roll-up for multi-tenant tables (fig02, fig20). Each
// tenant's RunResult carries its own pause distribution; fleet-level rows
// report the worst tenant — the noisy neighbour's victim is the number a
// multi-tenant SLO is judged by, not the fleet mean.
struct TenantPauses {
  double p99_cycles = 0;  // worst per-tenant p99 pause
  double max_cycles = 0;  // worst single pause anywhere in the fleet
};

inline TenantPauses WorstTenantPauses(
    const std::vector<workloads::RunResult>& tenants) {
  TenantPauses worst;
  for (const workloads::RunResult& r : tenants) {
    worst.p99_cycles = std::max(worst.p99_cycles, r.gc_p99_cycles);
    worst.max_cycles = std::max(worst.max_cycles, r.gc_max_cycles);
  }
  return worst;
}

}  // namespace svagc::bench
