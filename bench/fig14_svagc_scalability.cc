// Fig. 14: scalability of SVAGC in a single/multi-JVM setting (LRU cache on
// the 32-core configuration). Paper result: at 32 JVMs the application time
// surges by 327.5% while GC time grows only 52% — SwapVA's tiny bandwidth
// footprint keeps GC nearly flat while the mutators fight for DRAM.
#include "bench/bench_util.h"

using namespace svagc;
using namespace svagc::workloads;

int main() {
  const sim::CostProfile& profile = sim::ProfileXeonGold6130();
  std::printf("== Fig. 14: SVAGC single/multi-JVM scalability (LRUCache) ==\n");
  bench::PrintProfileHeader(profile);

  TablePrinter table({"JVMs", "app time(ms)", "GC time(ms)", "app growth",
                      "GC growth", "IPIs"});
  double base_app = 0;
  double base_gc = 0;
  for (const unsigned jvms : bench::SmokeSweep<unsigned>({1, 2, 4, 8, 16, 32})) {
    RunConfig config;
    config.workload = "lrucache";
    config.collector = CollectorKind::kSvagc;
    config.profile = &profile;
    config.iterations = bench::SmokeIterations(20);
    config.gc_threads = 4;  // paper: GCThreadsCount = 4 per JVM
    const auto results = RunMultiJvm(config, jvms);
    double app = 0;
    double gc = 0;
    std::uint64_t ipis = 0;
    for (const RunResult& r : results) {
      app += r.app_cycles;
      gc += r.gc_total_cycles;
      ipis = r.ipis_sent;  // machine-wide counter, same for every JVM
    }
    app /= jvms;
    gc /= jvms;
    if (jvms == 1) {
      base_app = app;
      base_gc = gc;
    }
    table.AddRow({Format("%u", jvms), bench::Ms(app, profile),
                  bench::Ms(gc, profile),
                  bench::Pct(100 * (app / base_app - 1)),
                  bench::Pct(100 * (gc / base_gc - 1)),
                  Format("%llu", (unsigned long long)ipis)});
  }
  bench::Emit("fig14", table);
  std::printf(
      "\npaper: at 32 JVMs application time +327.5%% while GC time only "
      "+52%%.\n");
  return 0;
}
