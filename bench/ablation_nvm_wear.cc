// Ablation: physical write traffic — the paper's §VI observation that
// hybrid DRAM/NVM heaps can use SwapVA to cut GC-induced write cycles
// ("replacing costly write operations of NVMs with our zero-copying ones"),
// quantified. Physical bytes written are counted at the frame level: the
// memmove path writes every moved byte; the SwapVA path writes none.
#include "bench/bench_util.h"

using namespace svagc;
using namespace svagc::workloads;

int main() {
  std::printf("== Ablation: GC-induced physical writes (NVM wear proxy) ==\n");
  TablePrinter table({"benchmark", "writes memmove(MiB)", "writes SwapVA(MiB)",
                      "reduction", "write-endurance gain"});
  for (const std::string& name : bench::SmokeSweep<std::string>(
           {"sigverify", "fft.large", "sparse.large", "sor.large.x10",
            "bisort"})) {
    RunConfig config;
    config.workload = name;
    config.iterations = bench::SmokeIterations(0);
    config.collector = CollectorKind::kSvagcNoSwap;
    const RunResult move = RunWorkload(config);
    config.collector = CollectorKind::kSvagc;
    const RunResult swap = RunWorkload(config);
    const double reduction =
        100.0 * (1.0 - static_cast<double>(swap.physical_bytes_written) /
                           static_cast<double>(move.physical_bytes_written));
    table.AddRow(
        {move.info.display_name,
         Format("%.1f", move.physical_bytes_written / 1048576.0),
         Format("%.1f", swap.physical_bytes_written / 1048576.0),
         bench::Pct(reduction),
         Format("%.2fx", static_cast<double>(move.physical_bytes_written) /
                             static_cast<double>(swap.physical_bytes_written))});
  }
  bench::Emit("ablation_nvm_wear", table);
  std::printf(
      "\nnote: totals include allocation zeroing (identical on both sides); "
      "the delta is exactly the compaction copy traffic SwapVA removes, "
      "which on an NVM-backed heap is wear-out budget returned to the "
      "application.\n");
  return 0;
}
