// Ablation: SwapVA outside Full GC — the Table I applicability claims,
// measured. A young space of survivors is evacuated to a fresh space in
// (a) minor-batch mode (aggregation applies) and (b) concurrent-relocation
// mode (one call per object), each with SwapVA on/off and PMD caching
// on/off. Confirms empirically which optimization pays off in which phase
// class, as Table I asserts.
#include <vector>

#include "bench/bench_util.h"
#include "core/minor_copy.h"

using namespace svagc;

namespace {

struct Setup {
  sim::Machine machine{8, sim::ProfileXeonGold6130()};
  sim::Kernel kernel{machine};
  sim::PhysicalMemory phys{320ULL << 20};
  std::unique_ptr<rt::Jvm> jvm;
  std::vector<rt::vaddr_t> survivors;
  rt::vaddr_t to_space = 0;

  explicit Setup(unsigned objects, std::uint64_t object_bytes) {
    rt::JvmConfig config;
    config.heap.capacity = 160ULL << 20;  // never collects during setup
    jvm = std::make_unique<rt::Jvm>(machine, phys, kernel, config);
    to_space = jvm->heap().end() + (1ULL << 24);
    jvm->address_space().MapRange(to_space, 96ULL << 20);
    for (unsigned i = 0; i < objects; ++i) {
      survivors.push_back(jvm->New(1, 0, object_bytes));
    }
  }
  ~Setup() { jvm->address_space().UnmapRange(to_space, 96ULL << 20); }
};

double EvacuationCycles(unsigned objects, std::uint64_t object_bytes,
                        core::EvacuationMode mode, bool use_swapva,
                        bool pmd_caching, std::uint64_t* calls) {
  Setup setup(objects, object_bytes);
  core::MoveObjectConfig config;
  config.use_swapva = use_swapva;
  config.pmd_caching = pmd_caching;
  core::MinorEvacuator evacuator(*setup.jvm, config);
  sim::CpuContext ctx(setup.machine, 0);
  (void)evacuator.Evacuate(setup.survivors, setup.to_space, mode, ctx);
  if (calls != nullptr) *calls = evacuator.stats().swap_calls_issued;
  return ctx.account.total();
}

}  // namespace

int main() {
  std::printf("== Ablation: SwapVA in minor-copy / concurrent-relocation "
              "phases (Table I) ==\n");
  bench::PrintProfileHeader(sim::ProfileXeonGold6130());

  constexpr unsigned kObjects = 64;
  TablePrinter table({"object size", "phase class", "memmove(kcyc)",
                      "SwapVA(kcyc)", "calls", "SwapVA no-PMD$(kcyc)",
                      "speedup"});
  for (const std::uint64_t kb : bench::SmokeSweep<std::uint64_t>({64, 256, 1024})) {
    for (const auto mode : {core::EvacuationMode::kMinorBatch,
                            core::EvacuationMode::kConcurrentSolo}) {
      const char* phase = mode == core::EvacuationMode::kMinorBatch
                              ? "Minor (copying)"
                              : "Concurrent (reloc.)";
      std::uint64_t calls = 0;
      const double copy =
          EvacuationCycles(kObjects, kb * 1024, mode, false, true, nullptr);
      const double swap =
          EvacuationCycles(kObjects, kb * 1024, mode, true, true, &calls);
      const double swap_nopmd =
          EvacuationCycles(kObjects, kb * 1024, mode, true, false, nullptr);
      table.AddRow({Format("%llu KiB", (unsigned long long)kb), phase,
                    Format("%.1f", copy / 1e3), Format("%.1f", swap / 1e3),
                    Format("%llu", (unsigned long long)calls),
                    Format("%.1f", swap_nopmd / 1e3),
                    Format("%.2fx", copy / swap)});
    }
  }
  bench::Emit("ablation_minor_copy", table);
  std::printf(
      "\nTable I, demonstrated: SwapVA and PMD caching help both phase "
      "classes; aggregation (fewer calls) only exists in the minor batch — "
      "concurrent relocation issues one syscall per object.\n");
  return 0;
}
