// Ablation: SwapVA outside Full GC — the Table I applicability claims,
// measured. A young space of survivors is evacuated to a fresh space in
// (a) minor-batch mode (aggregation applies) and (b) concurrent-relocation
// mode (one call per object), each with SwapVA on/off and PMD caching
// on/off. Confirms empirically which optimization pays off in which phase
// class, as Table I asserts. The "gen front-end" column runs the same
// tenure batch through the real generational collector's minor-GC evacuate
// phase (core/generational_collector), so the demonstrator and the
// production path stay directly comparable.
#include <vector>

#include "bench/bench_util.h"
#include "core/generational_collector.h"
#include "core/minor_copy.h"
#include "core/svagc_collector.h"

using namespace svagc;

namespace {

struct Setup {
  sim::Machine machine{8, sim::ProfileXeonGold6130()};
  sim::Kernel kernel{machine};
  sim::PhysicalMemory phys{320ULL << 20};
  std::unique_ptr<rt::Jvm> jvm;
  std::vector<rt::vaddr_t> survivors;
  rt::vaddr_t to_space = 0;

  explicit Setup(unsigned objects, std::uint64_t object_bytes) {
    rt::JvmConfig config;
    config.heap.capacity = 160ULL << 20;  // never collects during setup
    jvm = std::make_unique<rt::Jvm>(machine, phys, kernel, config);
    to_space = jvm->heap().end() + (1ULL << 24);
    jvm->address_space().MapRange(to_space, 96ULL << 20);
    for (unsigned i = 0; i < objects; ++i) {
      survivors.push_back(jvm->New(1, 0, object_bytes));
    }
  }
  ~Setup() { jvm->address_space().UnmapRange(to_space, 96ULL << 20); }
};

double EvacuationCycles(unsigned objects, std::uint64_t object_bytes,
                        core::EvacuationMode mode, bool use_swapva,
                        bool pmd_caching, std::uint64_t* calls) {
  Setup setup(objects, object_bytes);
  core::MoveObjectConfig config;
  config.use_swapva = use_swapva;
  config.pmd_caching = pmd_caching;
  core::MinorEvacuator evacuator(*setup.jvm, config);
  sim::CpuContext ctx(setup.machine, 0);
  (void)evacuator.Evacuate(setup.survivors, setup.to_space, mode, ctx);
  if (calls != nullptr) *calls = evacuator.stats().swap_calls_issued;
  return ctx.account.total();
}

// The production path the demonstrator models: allocate the survivors in
// the real collector's nursery, then run one minor collection whose
// tenuring (tenure_age = 1 promotes everything) evacuates them through the
// identical kMinorBatch machinery. Returns the minor cycle's evacuate-phase
// cycles on a single worker, the closest analogue of the demonstrator's
// one-context batch.
double GenFrontEndCycles(unsigned objects, std::uint64_t object_bytes) {
  sim::Machine machine(8, sim::ProfileXeonGold6130());
  sim::Kernel kernel(machine);
  sim::PhysicalMemory phys(320ULL << 20);
  rt::JvmConfig jvm_config;
  jvm_config.heap.capacity = 160ULL << 20;
  jvm_config.heap.page_align_large = true;
  auto jvm = std::make_unique<rt::Jvm>(machine, phys, kernel, jvm_config);

  core::GenerationalConfig gen;
  gen.young_bytes = 72ULL << 20;      // fits the 1 MiB row's survivors while
                                      // leaving old-space room to tenure them
  gen.bypass_bytes = 4ULL << 20;      // everything allocates young
  gen.tenure_age = 1;                 // first minor promotes every survivor
  gen.gang_workers = 1;               // match the demonstrator's one context
  auto inner = std::make_unique<core::SvagcCollector>(
      machine, /*gc_threads=*/1, /*first_core=*/0, core::SvagcConfig{});
  auto collector = std::make_unique<core::GenerationalCollector>(
      machine, /*first_core=*/0, std::move(inner), gen);
  core::GenerationalCollector* front = collector.get();
  jvm->set_collector(std::move(collector));
  jvm->set_gc_barrier(front);
  jvm->set_alloc_front_end(front);

  for (unsigned i = 0; i < objects; ++i) {
    jvm->roots().Add(jvm->New(1, 0, object_bytes));
  }
  SVAGC_CHECK(front->MinorCollect(*jvm));
  SVAGC_CHECK(front->last_minor().tenured == objects);
  return front->log().Sum().compact;
}

}  // namespace

int main() {
  std::printf("== Ablation: SwapVA in minor-copy / concurrent-relocation "
              "phases (Table I) ==\n");
  bench::PrintProfileHeader(sim::ProfileXeonGold6130());

  constexpr unsigned kObjects = 64;
  TablePrinter table({"object size", "phase class", "memmove(kcyc)",
                      "SwapVA(kcyc)", "calls", "SwapVA no-PMD$(kcyc)",
                      "gen front-end(kcyc)", "speedup"});
  for (const std::uint64_t kb : bench::SmokeSweep<std::uint64_t>({64, 256, 1024})) {
    const double gen = GenFrontEndCycles(kObjects, kb * 1024);
    for (const auto mode : {core::EvacuationMode::kMinorBatch,
                            core::EvacuationMode::kConcurrentSolo}) {
      const bool minor = mode == core::EvacuationMode::kMinorBatch;
      const char* phase = minor ? "Minor (copying)" : "Concurrent (reloc.)";
      std::uint64_t calls = 0;
      const double copy =
          EvacuationCycles(kObjects, kb * 1024, mode, false, true, nullptr);
      const double swap =
          EvacuationCycles(kObjects, kb * 1024, mode, true, true, &calls);
      const double swap_nopmd =
          EvacuationCycles(kObjects, kb * 1024, mode, true, false, nullptr);
      table.AddRow({Format("%llu KiB", (unsigned long long)kb), phase,
                    Format("%.1f", copy / 1e3), Format("%.1f", swap / 1e3),
                    Format("%llu", (unsigned long long)calls),
                    Format("%.1f", swap_nopmd / 1e3),
                    minor ? Format("%.1f", gen / 1e3) : std::string("-"),
                    Format("%.2fx", copy / swap)});
    }
  }
  bench::Emit("ablation_minor_copy", table);
  std::printf(
      "\nTable I, demonstrated: SwapVA and PMD caching help both phase "
      "classes; aggregation (fewer calls) only exists in the minor batch — "
      "concurrent relocation issues one syscall per object.\n");
  return 0;
}
