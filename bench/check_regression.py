#!/usr/bin/env python3
"""Bench-regression gate: modeled-cycle columns vs a checked-in baseline.

Runs the named bench harnesses in smoke+JSON mode (the same configuration the
bench_smoke ctest validates), extracts every numeric cell from columns whose
header names a cycle/time quantity, and compares each against
BENCH_baseline.json with a relative tolerance (default +/-15%). Modeled
cycles are deterministic and host-independent, so the tolerance exists only
to absorb deliberate cost-profile recalibrations; anything larger is a real
regression (or a real improvement) and must be re-baselined on purpose.

Two rebaseline modes:

    # Merge: refresh only the named benches, keep every other baseline
    # entry byte-identical (the usual case -- one bench changed).
    python3 bench/check_regression.py --baseline bench/BENCH_baseline.json \
        --bench-dir build/bench --update-baseline fig19_plan_optimizer

    # Overwrite: regenerate the whole file from the named benches (use when
    # recalibrating the cost profile, which moves every column at once).
    python3 bench/check_regression.py --baseline bench/BENCH_baseline.json \
        --bench-dir build/bench --rebaseline fig01_phase_breakdown ...

Either way, commit the updated BENCH_baseline.json with an explanation.
"""

import argparse
import json
import os
import subprocess
import sys

# A column participates in the gate when its header mentions one of these
# (case-insensitive): "cyc(k)", "kcyc", "ms", "cycles".
CYCLE_TOKENS = ("cyc", "ms", "cycles")


def is_cycle_column(header):
    h = header.lower()
    return any(tok in h for tok in CYCLE_TOKENS)


def parse_number(cell):
    """Returns float value of a purely numeric cell, else None."""
    try:
        return float(cell)
    except ValueError:
        return None


def row_key(row):
    """A row is keyed by its leading run of non-numeric label cells: the
    sweep variable plus any qualifier columns (a bench arm, a phase class).
    Tables whose rows carry a single label column keep their old first-cell
    key; tables that sweep a cross product stay unambiguous."""
    parts = [row[0]]
    for cell in row[1:]:
        if parse_number(cell) is not None:
            break
        parts.append(cell)
    return " | ".join(parts)


def run_bench(bench_dir, name):
    env = dict(os.environ)
    env["SVAGC_BENCH_SMOKE"] = "1"
    env["SVAGC_BENCH_JSON"] = "1"
    path = os.path.join(bench_dir, name)
    proc = subprocess.run(
        [path], env=env, capture_output=True, text=True, timeout=600
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{name} exited {proc.returncode}:\n{proc.stdout}{proc.stderr}"
        )
    tables = []
    for line in proc.stdout.splitlines():
        if not line.startswith("{"):
            continue
        table = json.loads(line)
        if "id" in table and "headers" in table and "rows" in table:
            tables.append(table)
    if not tables:
        raise RuntimeError(f"{name} emitted no JSON tables")
    return tables


def compare(name, baseline_tables, current_tables, tolerance, failures):
    base_by_id = {t["id"]: t for t in baseline_tables}
    cur_by_id = {t["id"]: t for t in current_tables}
    for table_id, base in base_by_id.items():
        cur = cur_by_id.get(table_id)
        if cur is None:
            failures.append(f"{name}: table '{table_id}' missing from output")
            continue
        if cur["headers"] != base["headers"]:
            failures.append(
                f"{name}/{table_id}: headers changed "
                f"{base['headers']} -> {cur['headers']} (re-baseline needed)"
            )
            continue
        cur_rows = {row_key(row): row for row in cur["rows"]}
        for base_row in base["rows"]:
            key = row_key(base_row)
            cur_row = cur_rows.get(key)
            if cur_row is None:
                failures.append(
                    f"{name}/{table_id}: row '{key}' missing from output"
                )
                continue
            for col, header in enumerate(base["headers"]):
                if not is_cycle_column(header):
                    continue
                want = parse_number(base_row[col])
                got = parse_number(cur_row[col])
                if want is None:
                    continue
                if got is None:
                    failures.append(
                        f"{name}/{table_id} row '{key}' col '{header}': "
                        f"non-numeric cell '{cur_row[col]}'"
                    )
                    continue
                limit = tolerance * max(abs(want), 1e-9)
                if abs(got - want) > limit:
                    failures.append(
                        f"{name}/{table_id} row '{key}' col '{header}': "
                        f"{got} vs baseline {want} "
                        f"(+/-{tolerance:.0%} allowed)"
                    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--bench-dir", required=True)
    ap.add_argument("--tolerance", type=float, default=0.15)
    ap.add_argument(
        "--rebaseline",
        action="store_true",
        help="overwrite the whole baseline with the current output",
    )
    ap.add_argument(
        "--update-baseline",
        action="store_true",
        help="merge the named benches into the existing baseline, "
        "preserving entries for benches not named here",
    )
    ap.add_argument("benches", nargs="+")
    args = ap.parse_args()
    if args.rebaseline and args.update_baseline:
        ap.error("--rebaseline and --update-baseline are mutually exclusive")

    current = {}
    for name in args.benches:
        current[name] = run_bench(args.bench_dir, name)
        print(f"ran {name}: {len(current[name])} table(s)")

    if args.rebaseline or args.update_baseline:
        merged = {}
        if args.update_baseline and os.path.exists(args.baseline):
            with open(args.baseline) as f:
                merged = json.load(f)
        kept = [k for k in merged if k not in current]
        merged.update(current)
        with open(args.baseline, "w") as f:
            json.dump(merged, f, indent=1, sort_keys=True)
            f.write("\n")
        if args.update_baseline:
            print(
                f"baseline updated: {args.baseline} "
                f"(refreshed {sorted(current)}, kept {sorted(kept)})"
            )
        else:
            print(f"baseline rewritten: {args.baseline}")
        return 0

    with open(args.baseline) as f:
        baseline = json.load(f)

    failures = []
    for name in args.benches:
        if name not in baseline:
            failures.append(f"{name}: not in baseline (run --rebaseline)")
            continue
        compare(name, baseline[name], current[name], args.tolerance, failures)

    if failures:
        print(f"{len(failures)} bench regression(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("all cycle columns within tolerance of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
