// Table II: benchmark configuration. Prints the paper's configuration next
// to this reproduction's scaled parameters (live sets scaled to tens of MiB
// per JVM, per-object sizes preserved — see DESIGN.md §2).
#include "bench/bench_util.h"

using namespace svagc;
using namespace svagc::workloads;

namespace {

struct PaperRow {
  const char* name;
  const char* threads;
  const char* heap_gib;
};

constexpr PaperRow kPaper[] = {
    {"fft.large", "576", "19.2 - 40"},   {"sparse.large", "576", "5 - 8.5"},
    {"sor.large", "32", "51.5 - 85.8"},  {"lu.large", "224", "3 - 5"},
    {"compress", "640", "19 - 32"},      {"sigverify", "256", "28 - 56.7"},
    {"crypto.aes", "96", "5.2 - 8.67"},  {"pagerank", "288", "4 - 6.5"},
    {"bisort", "896", "8 - 19.2"},       {"parallelsort", "896", "16 - 50"},
    {"lrucache", "1", "4.5"},
};

}  // namespace

int main() {
  std::printf("== Table II: benchmark configuration (paper vs scaled) ==\n");
  TablePrinter table({"Benchmark", "Suite", "paper threads", "paper heap(GiB)",
                      "scaled threads", "scaled heap(MiB) 1.2x-2x",
                      "avg object"});
  for (const PaperRow& row : kPaper) {
    const auto workload = MakeWorkload(row.name);
    SVAGC_CHECK(workload != nullptr);
    const WorkloadInfo& info = workload->info();
    table.AddRow(
        {info.display_name, info.suite, row.threads, row.heap_gib,
         Format("%u", info.logical_threads),
         Format("%.1f - %.1f", 1.2 * info.min_heap_bytes / 1048576.0,
                2.0 * info.min_heap_bytes / 1048576.0),
         info.avg_object_bytes >= 1048576
             ? Format("%.1f MiB", info.avg_object_bytes / 1048576.0)
         : info.avg_object_bytes >= 1024
             ? Format("%.1f KiB", info.avg_object_bytes / 1024.0)
             : Format("%llu B", (unsigned long long)info.avg_object_bytes)});
  }
  bench::Emit("tab02", table);
  std::printf(
      "\nscaling: logical threads = paper threads / 16; live sets scaled to "
      "laptop size with per-object sizes preserved (the variable SwapVA's "
      "benefit depends on).\n");
  return 0;
}
