// Fig. 23: far-memory tier — SwapVA relink vs memmove under overcommit.
//
// Setup: 2N small pages mapped, tagged, then a far tier attached with a
// residency limit of r x 2N pages (r = 50/75/90%), so the coldest (1-r) x 2N
// pages demote to the far swap area. Both arms then perform the same logical
// GC move — exchange/copy region A (the first N pages) with region B:
//
//   swapva   SysSwapVa over the two regions. Swapped PTEs relink slot-index
//            for frame (or slot for slot) inside the leaf exchange — ZERO
//            far-tier traffic and zero faults, at every residency level.
//            The harness hard-asserts both totals are exactly 0.
//   memmove  CopyBytes of A over B. Every non-resident page faults through
//            the userspace handler (fault entry + dispatch + far read) and,
//            with the near tier at its limit, each fault first evicts a
//            victim (far write) — the full far-tier freight.
//
// Both arms end with identical region contents (checked by reading every
// page tag through the residency-independent raw path), so the cycle gap is
// pure mechanism, not work avoided.
//
// Env knobs: SVAGC_FAR_TIER_RESIDENCY (pin one residency fraction),
// SVAGC_FAR_TIER_PAGES (pin one per-region page count).
#include "bench/bench_util.h"
#include "simkernel/swapva.h"

using namespace svagc;

namespace {

struct Arm {
  double total = 0;
  double far_cycles = 0;    // kFarRead + kFarWrite
  double fault_cycles = 0;  // kFault (trap entry + LWT dispatch)
  std::uint64_t relinks_swapped = 0;
  std::uint64_t faults = 0;
};

struct Rig {
  sim::Machine machine;
  sim::Kernel kernel;
  sim::PhysicalMemory phys;
  sim::AddressSpace as;
  sim::vaddr_t base;
  std::uint64_t pages;  // per region; 2x pages are mapped

  Rig(std::uint64_t n, double residency)
      : machine(1, sim::ProfileXeonGold6130()),
        kernel(machine),
        phys((2 * n + 8) << sim::kPageShift),
        as(machine, phys),
        base(1ULL << 32),
        pages(n) {
    as.MapRange(base, (2 * n) << sim::kPageShift);
    // Tag every page while all are resident: first word = page index.
    for (std::uint64_t i = 0; i < 2 * n; ++i) {
      as.WriteWord(base + (i << sim::kPageShift), 0xFA0000000000ULL + i);
    }
    sim::FarTierConfig tier;
    tier.resident_limit_pages = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(2 * n) * residency));
    // Setup-time demotions charge a scratch context, not the measured one.
    sim::CpuContext setup_ctx(machine, 0);
    as.EnableFarTier(kernel, setup_ctx, tier);
  }

  std::uint64_t Tag(std::uint64_t page_index) {
    return as.ReadWord(base + (page_index << sim::kPageShift));
  }
};

Arm Harvest(const sim::CpuContext& ctx, const Rig& rig) {
  Arm arm;
  arm.total = ctx.account.total();
  arm.far_cycles = ctx.account.ByKind(sim::CostKind::kFarRead) +
                   ctx.account.ByKind(sim::CostKind::kFarWrite);
  arm.fault_cycles = ctx.account.ByKind(sim::CostKind::kFault);
  arm.relinks_swapped = rig.kernel.relinks_swapped();
  arm.faults = rig.as.far_tier()->faults();
  return arm;
}

// SwapVA arm: one disjoint exchange of region A and region B.
Arm RunSwapVa(std::uint64_t pages, double residency) {
  Rig rig(pages, residency);
  const sim::vaddr_t region_b = rig.base + (pages << sim::kPageShift);
  sim::CpuContext ctx(rig.machine, 0);
  rig.kernel.SysSwapVa(rig.as, ctx, rig.base, region_b, pages,
                       sim::SwapVaOptions{});
  // Contents exchanged — through swapped pages too (raw reads see the far
  // tier): page i of A now carries B's tag and vice versa.
  for (std::uint64_t i = 0; i < pages; ++i) {
    SVAGC_CHECK(rig.Tag(i) == 0xFA0000000000ULL + pages + i);
    SVAGC_CHECK(rig.Tag(pages + i) == 0xFA0000000000ULL + i);
  }
  return Harvest(ctx, rig);
}

// memmove arm: copy region A over region B (the GC-copy direction of the
// same move), faulting both regions resident on the way.
Arm RunMemmove(std::uint64_t pages, double residency) {
  Rig rig(pages, residency);
  const sim::vaddr_t region_b = rig.base + (pages << sim::kPageShift);
  sim::CpuContext ctx(rig.machine, 0);
  rig.as.CopyBytes(ctx, region_b, rig.base, pages << sim::kPageShift,
                   sim::AddressSpace::CopyLocality::kCold);
  for (std::uint64_t i = 0; i < pages; ++i) {
    SVAGC_CHECK(rig.Tag(pages + i) == 0xFA0000000000ULL + i);
  }
  return Harvest(ctx, rig);
}

}  // namespace

int main() {
  const sim::CostProfile profile = sim::ProfileXeonGold6130();
  std::printf("== Fig. 23: far-memory tier — SwapVA relink vs memmove ==\n");
  bench::PrintProfileHeader(profile);
  std::printf("far=%.2f/%.2f cyc/B fault=%.0f+%.0f cyc\n",
              profile.far_read_per_byte, profile.far_write_per_byte,
              profile.fault_entry, profile.fault_dispatch);

  TablePrinter table({"resid/pages", "relinks", "swap far(kcyc)",
                      "swap(kcyc)", "mm faults", "mm far(kcyc)", "mm(kcyc)",
                      "mm/swap"});

  // Env knobs: SVAGC_FAR_TIER_RESIDENCY pins the sweep to one near-tier
  // fraction (0 < r < 1); SVAGC_FAR_TIER_PAGES pins the per-region size.
  const double resid_override = bench::EnvDouble("SVAGC_FAR_TIER_RESIDENCY", 0);
  const unsigned pages_override = bench::EnvUnsigned("SVAGC_FAR_TIER_PAGES", 0);
  SVAGC_CHECK(resid_override == 0 ||
              (resid_override > 0 && resid_override < 1));
  std::vector<double> residencies = {0.50, 0.75, 0.90};
  if (resid_override != 0) residencies = {resid_override};
  std::vector<std::uint64_t> region_pages =
      bench::SmokeSweep<std::uint64_t>({256, 1024, 4096});
  if (pages_override != 0) region_pages = {pages_override};

  for (const double residency : residencies) {
    for (const std::uint64_t pages : region_pages) {
      const Arm swap = RunSwapVa(pages, residency);
      const Arm mm = RunMemmove(pages, residency);

      // The headline acceptance: a SwapVA relink of swapped entries moves
      // ZERO bytes across the tier boundary and never faults, while the
      // memmove arm pays the full far freight at every residency level.
      SVAGC_CHECK(swap.far_cycles == 0.0);
      SVAGC_CHECK(swap.fault_cycles == 0.0);
      SVAGC_CHECK(swap.faults == 0);
      SVAGC_CHECK(swap.relinks_swapped > 0);
      SVAGC_CHECK(mm.far_cycles > 0.0);
      SVAGC_CHECK(mm.faults > 0);

      table.AddRow({Format("%.0f%%/%llu", residency * 100,
                           (unsigned long long)pages),
                    Format("%llu", (unsigned long long)swap.relinks_swapped),
                    Format("%.2f", swap.far_cycles / 1e3),
                    Format("%.2f", swap.total / 1e3),
                    Format("%llu", (unsigned long long)mm.faults),
                    Format("%.2f", mm.far_cycles / 1e3),
                    Format("%.2f", mm.total / 1e3),
                    Format("%.1f", mm.total / swap.total)});
    }
  }
  bench::Emit("fig23", table);

  std::printf(
      "swapped-entry relink: the leaf exchange carries the slot index with "
      "the PTE word, so compaction relocates far-tier pages without a single "
      "far-tier byte; the memmove arm pays fault entry + far read per "
      "non-resident page and a far write per eviction\n");
  std::printf(
      "memmove faults saturate at the full page count whatever the "
      "residency: a streaming copy over a range larger than the near tier "
      "is the clock's worst case — every eviction lands on a page the copy "
      "has not reached yet\n");
  return 0;
}
