// Fig. 12: average full-GC latency of SVAGC vs Shenandoah and ParallelGC at
// (a) 1.2x and (b) 2x minimum heap. Paper result: SVAGC is 3.82x / 16.05x
// better than ParallelGC / Shenandoah at 1.2x, and 2.74x / 13.62x at 2x.
#include "bench/bench_util.h"
#include "support/stats.h"

using namespace svagc;
using namespace svagc::workloads;

int main() {
  const sim::CostProfile& profile = sim::ProfileXeonGold6130();
  std::printf("== Fig. 12: average full-GC latency vs baselines ==\n");
  bench::PrintProfileHeader(profile);

  for (const double heap_factor : {1.2, 2.0}) {
    std::printf("-- %.1fx minimum heap --\n", heap_factor);
    TablePrinter table({"benchmark", "Shenandoah(ms)", "ParallelGC(ms)",
                        "SVAGC(ms)", "PGC/SVAGC", "Shen/SVAGC"});
    GeoMean pgc_ratio, shen_ratio;
    for (const std::string& name : bench::SmokeSweep(EvaluationWorkloads())) {
      RunConfig config;
      config.workload = name;
      config.profile = &profile;
      config.heap_factor = heap_factor;
      config.iterations = bench::SmokeIterations(0);

      config.collector = CollectorKind::kShenandoah;
      const RunResult shen = RunWorkload(config);
      config.collector = CollectorKind::kParallelGc;
      const RunResult pgc = RunWorkload(config);
      config.collector = CollectorKind::kSvagc;
      const RunResult svagc = RunWorkload(config);

      if (svagc.gc_avg_cycles > 0) {
        pgc_ratio.Add(pgc.gc_avg_cycles / svagc.gc_avg_cycles);
        shen_ratio.Add(shen.gc_avg_cycles / svagc.gc_avg_cycles);
      }
      table.AddRow({svagc.info.display_name,
                    bench::Ms(shen.gc_avg_cycles, profile),
                    bench::Ms(pgc.gc_avg_cycles, profile),
                    bench::Ms(svagc.gc_avg_cycles, profile),
                    Format("%.2fx", pgc.gc_avg_cycles / svagc.gc_avg_cycles),
                    Format("%.2fx", shen.gc_avg_cycles / svagc.gc_avg_cycles)});
    }
    bench::Emit(Format("fig12@%.1fx", heap_factor), table);
    std::printf("geomean: ParallelGC/SVAGC = %.2fx, Shenandoah/SVAGC = %.2fx\n",
                pgc_ratio.Value(), shen_ratio.Value());
    std::printf("paper:   %s\n\n",
                heap_factor < 1.5 ? "3.82x and 16.05x (at 1.2x heap)"
                                  : "2.74x and 13.62x (at 2x heap)");
  }
  return 0;
}
