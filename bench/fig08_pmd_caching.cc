// Fig. 8: benefit of PMD caching for multi-page swaps (i5-7600 testbed).
// Paper result: up to 52.48% improvement, 36.73% on average, for
// multi-page copying operations.
#include "bench/bench_util.h"
#include "support/stats.h"

using namespace svagc;

namespace {

double SwapCycles(const sim::CostProfile& profile, std::uint64_t pages,
                  bool pmd_caching) {
  sim::Machine machine(1, profile);
  sim::Kernel kernel(machine);
  sim::PhysicalMemory phys((2 * pages + 64) << sim::kPageShift);
  sim::AddressSpace as(machine, phys);
  const sim::vaddr_t base = 1ULL << 32;
  const std::uint64_t span = pages << sim::kPageShift;
  as.MapRange(base, 2 * span);

  sim::SwapVaOptions opts;
  opts.pmd_caching = pmd_caching;
  sim::CpuContext ctx(machine, 0);
  kernel.SysSwapVa(as, ctx, base, base + span, pages, opts);
  return ctx.account.total();
}

}  // namespace

int main() {
  const sim::CostProfile& profile = sim::ProfileCorei5_7600();
  std::printf("== Fig. 8: benefit of PMD caching ==\n");
  bench::PrintProfileHeader(profile);

  TablePrinter table(
      {"pages", "no cache(kcyc)", "PMD cache(kcyc)", "improvement"});
  Summary improvements;
  double best = 0;
  for (const std::uint64_t pages : bench::SmokeSweep<std::uint64_t>(
           {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})) {
    const double without = SwapCycles(profile, pages, false);
    const double with_cache = SwapCycles(profile, pages, true);
    const double improvement = 100 * (1 - with_cache / without);
    improvements.Add(improvement);
    best = std::max(best, improvement);
    table.AddRow({Format("%llu", (unsigned long long)pages),
                  Format("%.1f", without / 1e3),
                  Format("%.1f", with_cache / 1e3), bench::Pct(improvement)});
  }
  bench::Emit("fig08", table);
  std::printf("measured: max %.2f%%, mean %.2f%%\n", best, improvements.mean());
  std::printf("paper:    max 52.48%%, mean 36.73%%\n");
  return 0;
}
