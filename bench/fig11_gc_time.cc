// Fig. 11: total GC time with and without SwapVA on SVAGC at 1.2x minimum
// heap, broken into the compaction phase and everything else. Paper result:
// GC pause reduced by up to 70.9% (Sparse.large/4) ... 97% (Sigverify);
// benchmarks with fewer, larger objects gain the most.
//
// With --applicability, also prints Table I (optimization applicability).
#include <cstring>

#include "bench/bench_util.h"
#include "gc/applicability.h"

using namespace svagc;
using namespace svagc::workloads;

namespace {

void PrintTableI() {
  std::printf("== Table I: applicability of SwapVA and optimizations ==\n");
  TablePrinter table({"GC (Phase)", "SwapVA", "Aggregation", "PMD Caching",
                      "Overlapping"});
  for (unsigned p = 0; p < static_cast<unsigned>(gc::GcPhaseClass::kNumClasses);
       ++p) {
    const auto phase = static_cast<gc::GcPhaseClass>(p);
    std::vector<std::string> row{gc::GcPhaseClassName(phase)};
    for (unsigned o = 0;
         o < static_cast<unsigned>(gc::SwapVaOptimization::kNumOptimizations);
         ++o) {
      row.push_back(gc::OptimizationApplies(
                        phase, static_cast<gc::SwapVaOptimization>(o))
                        ? "yes"
                        : "-");
    }
    table.AddRow(std::move(row));
  }
  bench::Emit("tab01", table);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--applicability") == 0) {
    PrintTableI();
    return 0;
  }
  const sim::CostProfile& profile = sim::ProfileXeonGold6130();
  std::printf("== Fig. 11: GC time -/+ SwapVA on SVAGC (1.2x min heap) ==\n");
  bench::PrintProfileHeader(profile);

  TablePrinter table({"benchmark", "memmove GC(ms)", "[compact|rest]",
                      "SwapVA GC(ms)", "[compact|rest]", "GC reduction"});
  for (const std::string& name : bench::SmokeSweep(EvaluationWorkloads())) {
    RunConfig config;
    config.workload = name;
    config.profile = &profile;
    config.iterations = bench::SmokeIterations(0);
    config.collector = CollectorKind::kSvagcNoSwap;
    const RunResult base = RunWorkload(config);
    config.collector = CollectorKind::kSvagc;
    const RunResult swap = RunWorkload(config);

    auto split = [&](const RunResult& r) {
      return Format("%.3f|%.3f",
                    r.phase_sum.compact / (profile.ghz * 1e6),
                    (r.phase_sum.Total() - r.phase_sum.compact) /
                        (profile.ghz * 1e6));
    };
    table.AddRow({base.info.display_name,
                  bench::Ms(base.gc_total_cycles, profile), split(base),
                  bench::Ms(swap.gc_total_cycles, profile), split(swap),
                  bench::Pct(100 * (1 - swap.gc_total_cycles /
                                            base.gc_total_cycles))});
  }
  bench::Emit("fig11", table);
  std::printf(
      "\npaper: reductions up to 70.9%% (Sparse.large/4) and 97%% "
      "(Sigverify); fewer+larger objects gain most, small-object benchmarks "
      "(Bisort) gain least.\n");
  return 0;
}
