// Fig. 15: application throughput of SVAGC at 1.2x minimum heap — the
// end-to-end gain from turning SwapVA on (vs the same collector with pure
// memmove). Paper result: improvements range from 15.2% (CryptoAES) to
// 86.9% (Sparse.large); memory-intensive benchmarks gain more than
// compute-intensive ones.
#include "bench/bench_util.h"

using namespace svagc;
using namespace svagc::workloads;

int main() {
  const sim::CostProfile& profile = sim::ProfileXeonGold6130();
  std::printf("== Fig. 15: application throughput of SVAGC (1.2x min heap) ==\n");
  bench::PrintProfileHeader(profile);

  TablePrinter table({"benchmark", "memmove(ops/s)", "SwapVA(ops/s)",
                      "improvement", "GC share (memmove)"});
  for (const std::string& name : bench::SmokeSweep(EvaluationWorkloads())) {
    RunConfig config;
    config.workload = name;
    config.profile = &profile;
    config.iterations = bench::SmokeIterations(0);
    config.collector = CollectorKind::kSvagcNoSwap;
    const RunResult base = RunWorkload(config);
    config.collector = CollectorKind::kSvagc;
    const RunResult swap = RunWorkload(config);
    table.AddRow(
        {base.info.display_name, Format("%.1f", base.throughput_ops),
         Format("%.1f", swap.throughput_ops),
         bench::Pct(100 * (swap.throughput_ops / base.throughput_ops - 1)),
         bench::Pct(100 * base.gc_total_cycles / base.app_cycles)});
  }
  bench::Emit("fig15", table);
  std::printf(
      "\npaper: 15.2%% (CryptoAES) to 86.9%% (Sparse.large); gains track how "
      "much of the run the GC occupies.\n");
  return 0;
}
