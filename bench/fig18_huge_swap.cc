// Fig. 18 (repo extension, not in the paper): PMD-level huge-entry swapping.
// Sweeps object size with the 2 MiB alignment class off (per-PTE exchange)
// and on (whole-PMD-entry exchange), reporting modeled swap cycles and page
// table entry writes. Expectation: for 2 MiB-multiple objects one entry
// write remaps 2 MiB instead of 512, giving well over a 5x reduction in both
// columns; sub-unit tails fall back to PTE exchanges after a THP-style
// split, eroding the win by the split's 512 entry writes per touched unit.
#include "bench/bench_util.h"
#include "support/align.h"

using namespace svagc;

namespace {

struct SwapMeasurement {
  double cycles = 0;
  std::uint64_t entry_writes = 0;
};

SwapMeasurement MeasureSwap(const sim::CostProfile& profile,
                            std::uint64_t pages, bool hugepages) {
  sim::Machine machine(1, profile);
  sim::Kernel kernel(machine);
  const std::uint64_t span =
      AlignUp(pages << sim::kPageShift, sim::kHugePageSize);
  sim::PhysicalMemory phys(2 * span + (8ULL << 20));
  sim::AddressSpace as(machine, phys);
  const sim::vaddr_t base = 1ULL << 32;
  if (hugepages) {
    as.MapRangeHuge(base, 2 * span);
  } else {
    as.MapRange(base, 2 * span);
  }

  sim::SwapVaOptions opts;
  opts.pmd_swapping = hugepages;
  sim::CpuContext ctx(machine, 0);
  kernel.SysSwapVa(as, ctx, base, base + span, pages, opts);

  SwapMeasurement m;
  m.cycles = ctx.account.total();
  // Every mapping-state write: PMD exchanges, PTE exchanges, and the 512
  // PTEs a huge-leaf split has to materialize per demoted unit (both sides).
  m.entry_writes = kernel.pmd_swaps() + kernel.pte_swaps() +
                   kernel.pmd_splits() * sim::kPagesPerHuge;
  return m;
}

}  // namespace

int main() {
  const sim::CostProfile& profile = sim::ProfileXeonGold6130();
  std::printf("== Fig. 18: PMD-level huge-entry swapping ==\n");
  bench::PrintProfileHeader(profile);

  TablePrinter table({"pages", "MiB", "4K cyc(k)", "2M cyc(k)", "speedup",
                      "4K writes", "2M writes", "write redux"});
  double min_aligned_cycle_ratio = 0;
  double min_aligned_write_ratio = 0;
  // 2 MiB multiples plus one ragged size (4 units + 8-page tail) showing the
  // split-path fallback cost.
  for (const std::uint64_t pages : bench::SmokeSweep<std::uint64_t>(
           {512, 1024, 2048, 2056, 4096, 8192})) {
    const SwapMeasurement pte = MeasureSwap(profile, pages, false);
    const SwapMeasurement pmd = MeasureSwap(profile, pages, true);
    const double cycle_ratio = pte.cycles / pmd.cycles;
    const double write_ratio = static_cast<double>(pte.entry_writes) /
                               static_cast<double>(pmd.entry_writes);
    if (pages % sim::kPagesPerHuge == 0) {
      if (min_aligned_cycle_ratio == 0 || cycle_ratio < min_aligned_cycle_ratio)
        min_aligned_cycle_ratio = cycle_ratio;
      if (min_aligned_write_ratio == 0 || write_ratio < min_aligned_write_ratio)
        min_aligned_write_ratio = write_ratio;
    }
    table.AddRow({Format("%llu", (unsigned long long)pages),
                  Format("%llu", (unsigned long long)(pages >> 9)),
                  Format("%.1f", pte.cycles / 1e3),
                  Format("%.1f", pmd.cycles / 1e3),
                  Format("%.1fx", cycle_ratio),
                  Format("%llu", (unsigned long long)pte.entry_writes),
                  Format("%llu", (unsigned long long)pmd.entry_writes),
                  Format("%.0fx", write_ratio)});
  }
  bench::Emit("fig18", table);
  std::printf(
      "measured: >=%.1fx cycle and >=%.0fx entry-write reduction for "
      "2 MiB-multiple objects (target >=5x)\n",
      min_aligned_cycle_ratio, min_aligned_write_ratio);
  if (min_aligned_cycle_ratio < 5.0 || min_aligned_write_ratio < 5.0) {
    std::printf("FAIL: below the 5x acceptance threshold\n");
    return 1;
  }
  return 0;
}
