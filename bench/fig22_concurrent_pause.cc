// Fig. 22 (extension): maximum GC pause vs heap size — STW SVAGC against
// the mutator-concurrent collector. The x axis is the workloads' minimum
// heap, ascending. The STW arm's max pause is a whole monolithic cycle and
// grows with the heap; the concurrent arm's is its largest [STW] window
// (init-mark, remark, one evacuation quantum, or the flip), which the
// quantum budget pins regardless of heap size — so the gap must widen, and
// the acceptance gate requires the concurrent arm strictly below STW at the
// two largest heaps.
#include <algorithm>

#include "bench/bench_util.h"

using namespace svagc;
using namespace svagc::workloads;

int main() {
  const sim::CostProfile& profile = sim::ProfileXeonGold6130();
  std::printf("== Fig. 22: max pause vs heap size, STW vs concurrent ==\n");
  bench::PrintProfileHeader(profile);

  // Sort the evaluation set by minimum heap: the figure's heap-size axis.
  std::vector<std::string> names = EvaluationWorkloads();
  std::sort(names.begin(), names.end(), [](const std::string& a,
                                           const std::string& b) {
    return MakeWorkload(a)->info().min_heap_bytes <
           MakeWorkload(b)->info().min_heap_bytes;
  });
  names = bench::SmokeSweep(names);

  TablePrinter table({"benchmark", "min-heap(MB)", "STW-max(ms)",
                      "Conc-max(ms)", "STW/Conc"});
  // One entry per row where both arms actually collected (short smoke runs
  // may not trigger GC on every workload), in ascending heap order: did the
  // concurrent arm's max window beat the STW arm's monolithic max pause?
  std::vector<bool> wins;
  for (std::size_t i = 0; i < names.size(); ++i) {
    RunConfig config;
    config.workload = names[i];
    config.profile = &profile;
    config.heap_factor = 1.6;
    config.iterations = bench::SmokeIterations(0);

    config.collector = CollectorKind::kSvagc;
    const RunResult stw = RunWorkload(config);
    config.collector = CollectorKind::kConcurrentSvagc;
    const RunResult conc = RunWorkload(config);

    if (stw.gc_max_cycles > 0 && conc.gc_max_cycles > 0) {
      wins.push_back(conc.gc_max_cycles < stw.gc_max_cycles);
    }
    table.AddRow({stw.info.display_name,
                  Format("%.0f", static_cast<double>(
                                     stw.info.min_heap_bytes) /
                                     (1 << 20)),
                  bench::Ms(stw.gc_max_cycles, profile),
                  bench::Ms(conc.gc_max_cycles, profile),
                  conc.gc_max_cycles > 0
                      ? Format("%.2fx", stw.gc_max_cycles /
                                            conc.gc_max_cycles)
                      : std::string("-")});
  }
  bench::Emit("fig22", table);

  // Acceptance gate: strictly below STW at the two largest collecting heaps.
  unsigned tail_rows = 0;
  unsigned tail_wins = 0;
  for (std::size_t i = wins.size(); i-- > 0 && tail_rows < 2;) {
    ++tail_rows;
    if (wins[i]) ++tail_wins;
  }
  std::printf(
      "concurrent max pause strictly below STW at %u of the %u largest "
      "collecting heap size(s)\n",
      tail_wins, tail_rows);
  // The gate is about the largest heaps, which the truncated smoke sweep
  // cannot reach (its front workload's whole STW cycle fits in one quantum
  // window by design); smoke only proves both arms run.
  if (bench::SmokeMode()) return 0;
  return tail_rows > 0 && tail_wins == tail_rows ? 0 : 1;
}
