// One-shot artifact summary: recomputes every headline claim of
// EXPERIMENTS.md live and prints paper-vs-measured side by side. Runs in a
// few seconds; useful as the first thing to execute when evaluating the
// reproduction.
#include "bench/bench_util.h"
#include "support/stats.h"

using namespace svagc;
using namespace svagc::workloads;

namespace {

double GcTotal(const char* workload, CollectorKind kind) {
  RunConfig config;
  config.workload = workload;
  config.collector = kind;
  config.iterations = bench::SmokeIterations(0);
  return RunWorkload(config).gc_total_cycles;
}

std::uint64_t ThresholdCrossover() {
  const sim::CostProfile& profile = sim::ProfileXeonGold6130();
  sim::Machine machine(1, profile);
  sim::Kernel kernel(machine);
  sim::PhysicalMemory phys(1024 << sim::kPageShift);
  sim::AddressSpace as(machine, phys);
  const sim::vaddr_t base = 1ULL << 32;
  as.MapRange(base, 512 << sim::kPageShift);
  for (std::uint64_t pages = 1; pages <= 64; ++pages) {
    sim::CpuContext copy_ctx(machine, 0), swap_ctx(machine, 0);
    as.CopyBytes(copy_ctx, base, base + (256ULL << sim::kPageShift),
                 pages << sim::kPageShift,
                 sim::AddressSpace::CopyLocality::kHot);
    kernel.SysSwapVa(as, swap_ctx, base, base + (256ULL << sim::kPageShift),
                     pages, sim::SwapVaOptions{});
    if (swap_ctx.account.total() < copy_ctx.account.total()) return pages;
  }
  return 0;
}

}  // namespace

int main() {
  std::printf("SVAGC reproduction — headline summary (see EXPERIMENTS.md)\n\n");
  TablePrinter table({"claim", "paper", "measured"});

  table.AddRow({"memmove/SwapVA break-even (6130)", "~10 pages",
                Format("%llu pages", (unsigned long long)ThresholdCrossover())});

  {
    const double base = GcTotal("sparse.large/4", CollectorKind::kSvagcNoSwap);
    const double swap = GcTotal("sparse.large/4", CollectorKind::kSvagc);
    table.AddRow({"GC-pause reduction, Sparse.large/4", "70.9%",
                  bench::Pct(100 * (1 - swap / base))});
  }
  {
    const double base = GcTotal("sigverify", CollectorKind::kSvagcNoSwap);
    const double swap = GcTotal("sigverify", CollectorKind::kSvagc);
    table.AddRow({"GC-pause reduction, Sigverify", "97%",
                  bench::Pct(100 * (1 - swap / base))});
  }
  {
    GeoMean pgc_ratio, shen_ratio;
    for (const std::string& name : bench::SmokeSweep(EvaluationWorkloads())) {
      RunConfig config;
      config.workload = name;
      config.iterations = bench::SmokeIterations(0);
      config.collector = CollectorKind::kSvagc;
      const double svagc = RunWorkload(config).gc_avg_cycles;
      config.collector = CollectorKind::kParallelGc;
      pgc_ratio.Add(RunWorkload(config).gc_avg_cycles / svagc);
      config.collector = CollectorKind::kShenandoah;
      shen_ratio.Add(RunWorkload(config).gc_avg_cycles / svagc);
    }
    table.AddRow({"avg latency, ParallelGC/SVAGC (1.2x)", "3.82x",
                  Format("%.2fx", pgc_ratio.Value())});
    table.AddRow({"avg latency, Shenandoah/SVAGC (1.2x)", "16.05x",
                  Format("%.2fx", shen_ratio.Value())});
  }
  {
    RunConfig config;
    config.workload = "lrucache";
    config.collector = CollectorKind::kSvagc;
    config.iterations = bench::SmokeIterations(20);
    config.gc_threads = 4;
    auto mean = [](const std::vector<RunResult>& rs, bool gc) {
      double total = 0;
      for (const auto& r : rs) total += gc ? r.gc_total_cycles : r.app_cycles;
      return total / rs.size();
    };
    const auto one = RunMultiJvm(config, 1);
    const auto many = RunMultiJvm(config, 32);
    table.AddRow({"32-JVM app growth, SVAGC (Fig. 14)", "+327.5%",
                  bench::Pct(100 * (mean(many, false) / mean(one, false) - 1))});
    table.AddRow({"32-JVM GC growth, SVAGC (Fig. 14)", "+52%",
                  bench::Pct(100 * (mean(many, true) / mean(one, true) - 1))});
  }

  bench::Emit("summary", table);
  std::printf(
      "\nfull sweeps: build/bench/fig01..fig17, tab02, tab03, ablations "
      "(fig17 = forwarding/compaction scheduler scaling).\n");
  return 0;
}
