// Fig. 20 (extension): the multi-tenant fleet arbiter ablation. N SVAGC
// tenants run the LRU-cache workload open-loop on one 32-core machine, and
// the three coordination mechanisms are switched on cumulatively:
//
//   off       — uncoordinated: every tenant collects inline at its own
//               pressure trigger, concurrent cycles pile their GC gangs and
//               their per-process shootdowns on top of each other (Fig. 2's
//               problem, now with SVAGC instead of ParallelGC).
//   batch     — concurrently admitted cycles form epochs; one multi-ASID
//               IPI round replaces the members' individual broadcasts.
//   batch+adm — plus admission control (at most K tenants in the swap-heavy
//               phase, priority aging) and pause-budget solo admission.
//
// Reported per row: worst-tenant pause stats, admission wait, SLO
// violations against SVAGC_FLEET_SLO_MS, and the shootdown economics.
//
// Env knobs: SVAGC_TENANTS (max tenant count), SVAGC_FLEET_SLO_MS (pause
// budget), SVAGC_FLEET_K (admission limit).
#include "bench/bench_util.h"
#include "fleet/fleet_runner.h"

using namespace svagc;
using namespace svagc::workloads;

namespace {

struct Arm {
  const char* name;
  fleet::ArbiterConfig arbiter;
};

}  // namespace

int main() {
  const sim::CostProfile& profile = sim::ProfileXeonGold6130();
  std::printf("== Fig. 20: fleet arbiter ablation (SVAGC, LRUCache) ==\n");
  bench::PrintProfileHeader(profile);

  const unsigned max_tenants = bench::EnvUnsigned("SVAGC_TENANTS", 16);
  const double slo_ms = bench::EnvDouble("SVAGC_FLEET_SLO_MS", 0.25);
  const unsigned admission_k = bench::EnvUnsigned("SVAGC_FLEET_K", 2);
  const double slo_cycles = slo_ms * profile.ghz * 1e6;

  std::vector<unsigned> tenant_sweep;
  for (unsigned t : {1u, 8u, 16u}) {
    if (t <= max_tenants) tenant_sweep.push_back(t);
  }

  const Arm arms[] = {
      {"off", fleet::ArbiterOff()},
      {"batch", fleet::ArbiterBatch()},
      {"batch+adm", fleet::ArbiterBatchAdmission(admission_k, slo_cycles)},
  };

  TablePrinter table({"T/mode", "app time(ms)", "GC max(ms)", "GC p99(ms)",
                      "wait max(ms)", "observed max(ms)", "SLO viol",
                      "epochs", "coalesced", "IPIs", "emerg"});
  for (const unsigned tenants : bench::SmokeSweep(tenant_sweep)) {
    for (const Arm& arm : arms) {
      fleet::FleetConfig config;
      config.run.workload = "lrucache";
      config.run.collector = CollectorKind::kSvagc;
      config.run.profile = &profile;
      config.run.iterations = bench::SmokeIterations(20, 6);
      config.run.gc_threads = 4;  // paper: GCThreadsCount = 4 per JVM
      config.tenants = tenants;
      config.arbiter = arm.arbiter;
      config.slo_budget_ms = slo_ms;
      const fleet::FleetResult result = fleet::RunFleet(config);

      double app = 0;
      double wait_max = 0;
      std::uint64_t coalesced = 0;
      for (const RunResult& r : result.tenants) {
        app += r.app_cycles;
        wait_max = std::max(wait_max, r.gc_wait_max_cycles);
        for (const auto& [name, value] : r.gc_counters) {
          if (name == "gc.flushes_coalesced") coalesced += value;
        }
      }
      app /= tenants;
      const bench::TenantPauses pauses =
          bench::WorstTenantPauses(result.tenants);
      table.AddRow({Format("%u/%s", tenants, arm.name),
                    bench::Ms(app, profile),
                    bench::Ms(pauses.max_cycles, profile),
                    bench::Ms(pauses.p99_cycles, profile),
                    bench::Ms(wait_max, profile),
                    bench::Ms(result.worst_observed_pause_cycles, profile),
                    Format("%llu", (unsigned long long)result.slo_violations),
                    Format("%llu", (unsigned long long)result.epochs),
                    Format("%llu", (unsigned long long)coalesced),
                    Format("%llu", (unsigned long long)result.ipis_sent),
                    Format("%llu", (unsigned long long)result.emergency_gcs)});
    }
  }
  bench::Emit("fig20", table);
  std::printf(
      "\nexpected: uncoordinated tenants pile GC gangs and shootdowns on top "
      "of each other; batching shares one IPI round per epoch, and admission "
      "control caps concurrent swap-heavy cycles — worst-tenant max pause "
      "and SLO violations drop at >= 8 tenants while single-tenant rows "
      "stay identical across arms.\n");
  return 0;
}
