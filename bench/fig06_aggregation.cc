// Fig. 6: aggregated vs separated SwapVA calls (i5-7600 testbed).
// K objects of N pages each are swapped either with K individual syscalls
// (Fig. 5a) or one vectored syscall (Fig. 5b). Paper result: aggregation
// amortizes the invocation cost; the benefit shrinks as the per-call page
// count grows.
#include <vector>

#include "bench/bench_util.h"
#include "runtime/heap.h"

using namespace svagc;

int main() {
  const sim::CostProfile& profile = sim::ProfileCorei5_7600();
  std::printf("== Fig. 6: aggregated vs separated SwapVA calls ==\n");
  bench::PrintProfileHeader(profile);

  constexpr unsigned kObjects = 32;
  TablePrinter table({"pages/object", "separated(kcyc)", "aggregated(kcyc)",
                      "saving"});
  for (const std::uint64_t pages :
       bench::SmokeSweep<std::uint64_t>({1, 2, 4, 8, 16, 32, 64, 128})) {
    sim::Machine machine(1, profile);
    sim::Kernel kernel(machine);
    sim::PhysicalMemory phys((2 * kObjects * pages + 64) << sim::kPageShift);
    sim::AddressSpace as(machine, phys);
    const sim::vaddr_t base = 1ULL << 32;
    const std::uint64_t span = pages << sim::kPageShift;
    as.MapRange(base, 2 * kObjects * span);

    sim::SwapVaOptions opts;  // defaults: PMD caching on, global flushes
    std::vector<sim::SwapRequest> requests;
    for (unsigned i = 0; i < kObjects; ++i) {
      requests.push_back({base + 2 * i * span, base + (2 * i + 1) * span, pages});
    }

    sim::CpuContext separated(machine, 0);
    for (const auto& req : requests) {
      kernel.SysSwapVa(as, separated, req.a, req.b, req.pages, opts);
    }
    sim::CpuContext aggregated(machine, 0);
    kernel.SysSwapVaVec(as, aggregated, requests, opts);

    table.AddRow({Format("%llu", (unsigned long long)pages),
                  Format("%.1f", separated.account.total() / 1e3),
                  Format("%.1f", aggregated.account.total() / 1e3),
                  bench::Pct(100 * (1 - aggregated.account.total() /
                                            separated.account.total()))});
  }
  bench::Emit("fig06", table);
  std::printf(
      "\npaper: one aggregated call replaces %u syscalls + flushes; the "
      "relative saving falls as pages/object rises.\n",
      kObjects);
  return 0;
}
