// Fig. 9: cost of SwapVA in a multi-core system — naive per-call global
// shootdowns vs the two scalability techniques of §IV (one up-front
// process-wide flush, local-only flushes afterwards, pinned caller).
// Setup follows the paper: 100 live swappable objects per cycle.
// Paper result (Eq. 2): IPIs drop from l*c to c; the optimized curve stays
// nearly flat as cores are added.
#include "bench/bench_util.h"

using namespace svagc;

namespace {

struct Outcome {
  double caller_cycles;       // charged to the compacting caller
  double disturbance_cycles;  // stolen from other cores by IPIs
  std::uint64_t ipis;
};

Outcome RunCompaction(const sim::CostProfile& profile, unsigned cores,
                      bool optimized) {
  constexpr unsigned kObjects = 100;  // paper's live swappable object count
  constexpr std::uint64_t kPages = 16;
  sim::Machine machine(cores, profile);
  sim::Kernel kernel(machine);
  sim::PhysicalMemory phys((2 * kObjects * kPages + 64) << sim::kPageShift);
  sim::AddressSpace as(machine, phys);
  const sim::vaddr_t base = 1ULL << 32;
  const std::uint64_t span = kPages << sim::kPageShift;
  as.MapRange(base, 2 * kObjects * span);

  sim::SwapVaOptions opts;
  opts.tlb_policy = optimized ? sim::TlbPolicy::kLocalOnly
                              : sim::TlbPolicy::kGlobalPerCall;
  sim::CpuContext ctx(machine, 0);
  if (optimized) {
    // Algorithm 4: pin + one up-front process-wide shootdown.
    kernel.SysPin(ctx);
    kernel.SysFlushProcessTlbs(as, ctx);
  }
  for (unsigned i = 0; i < kObjects; ++i) {
    kernel.SysSwapVa(as, ctx, base + 2 * i * span, base + (2 * i + 1) * span,
                     kPages, opts);
  }
  if (optimized) kernel.SysUnpin(ctx);
  return Outcome{ctx.account.total(),
                 static_cast<double>(machine.TotalDisturbanceCycles()),
                 machine.TotalIpisSent()};
}

}  // namespace

int main() {
  const sim::CostProfile& profile = sim::ProfileXeonGold6130();
  std::printf("== Fig. 9: multi-core optimizations to SwapVA (100 objects) ==\n");
  bench::PrintProfileHeader(profile);

  TablePrinter table({"cores", "naive(kcyc)", "naive IPIs", "opt(kcyc)",
                      "opt IPIs", "IPI gain", "speedup"});
  for (const unsigned cores :
       bench::SmokeSweep<unsigned>({1, 2, 4, 8, 16, 32})) {
    const Outcome naive = RunCompaction(profile, cores, false);
    const Outcome opt = RunCompaction(profile, cores, true);
    const double naive_total = naive.caller_cycles + naive.disturbance_cycles;
    const double opt_total = opt.caller_cycles + opt.disturbance_cycles;
    table.AddRow(
        {Format("%u", cores), Format("%.1f", naive_total / 1e3),
         Format("%llu", (unsigned long long)naive.ipis),
         Format("%.1f", opt_total / 1e3),
         Format("%llu", (unsigned long long)opt.ipis),
         opt.ipis == 0 ? "inf" : Format("%.0fx", double(naive.ipis) / opt.ipis),
         Format("%.2fx", naive_total / opt_total)});
  }
  bench::Emit("fig09", table);
  std::printf(
      "\npaper (Eq. 2): IPIs fall from l*c to c (gain = l = 100 here); the "
      "optimized cost stays nearly flat with core count.\n");
  return 0;
}
