// Fig. 17 (extension): scaling of the phase II/IV parallelization — the
// region-summary forwarding pipeline vs the serial reference summary, and
// the dependency-aware work-stealing compaction scheduler vs static
// contiguous blocks, on the mixed small/large LRU-cache heap. Expected:
// parallel forwarding >= 2x at 8 threads; work stealing no worse than
// static blocks at every thread count.
#include "bench/bench_util.h"

using namespace svagc;
using namespace svagc::workloads;

namespace {

workloads::RunResult RunArm(const sim::CostProfile& profile, unsigned threads,
                            gc::ForwardingMode forwarding,
                            gc::CompactionSchedulerKind scheduler) {
  RunConfig config;
  config.workload = "lrucache";
  config.collector = CollectorKind::kSvagc;
  config.profile = &profile;
  config.iterations = bench::SmokeIterations(20);
  config.gc_threads = threads;
  config.forwarding = forwarding;
  config.compaction_scheduler = scheduler;
  return RunWorkload(config);
}

}  // namespace

int main() {
  const sim::CostProfile& profile = sim::ProfileXeonGold6130();
  std::printf(
      "== Fig. 17: forwarding & compaction-scheduler scaling (LRUCache) ==\n");
  bench::PrintProfileHeader(profile);

  TablePrinter table({"threads", "fwd serial(ms)", "fwd parallel(ms)",
                      "fwd speedup", "compact static(ms)", "compact steal(ms)",
                      "compact speedup", "GC total(ms)"});
  double speedup_at_8 = 0;
  for (const unsigned threads :
       bench::SmokeSweep<unsigned>({1, 2, 4, 8, 16})) {
    // Arm 1: the legacy configuration (serial summary, static blocks).
    const RunResult legacy =
        RunArm(profile, threads, gc::ForwardingMode::kSerial,
               gc::CompactionSchedulerKind::kStaticBlocks);
    // Arm 2: parallel summary, static blocks (isolates phase II).
    const RunResult par_static =
        RunArm(profile, threads, gc::ForwardingMode::kParallelSummary,
               gc::CompactionSchedulerKind::kStaticBlocks);
    // Arm 3: production — parallel summary + work stealing.
    const RunResult par_steal =
        RunArm(profile, threads, gc::ForwardingMode::kParallelSummary,
               gc::CompactionSchedulerKind::kWorkStealing);

    const double fwd_speedup =
        legacy.phase_sum.forward / par_static.phase_sum.forward;
    if (threads == 8) speedup_at_8 = fwd_speedup;
    table.AddRow({Format("%u", threads),
                  bench::Ms(legacy.phase_sum.forward, profile),
                  bench::Ms(par_static.phase_sum.forward, profile),
                  Format("%.2fx", fwd_speedup),
                  bench::Ms(par_static.phase_sum.compact, profile),
                  bench::Ms(par_steal.phase_sum.compact, profile),
                  Format("%.2fx", par_static.phase_sum.compact /
                                      par_steal.phase_sum.compact),
                  bench::Ms(par_steal.gc_total_cycles, profile)});
  }
  bench::Emit("fig17", table);
  std::printf(
      "\ntarget: parallel region-summary forwarding >= 2x the serial summary "
      "at 8 threads (measured %.2fx); the work-stealing scheduler is never "
      "slower than static blocks.\n",
      speedup_at_8);
  return 0;
}
