// Fig. 21: translation-backend comparison — the 4-level radix page table
// (with and without PMD caching) vs the hashed/inverted table whose SwapVA
// relink is O(1) bucket probes. Four scenarios bracket the design space:
//
//   dense-slide    overlapping GC slide over contiguous pages (Algorithm 2),
//                  PMD cache hot for radix — radix's best case
//   sparse-vec     an aggregated vector of single-page swaps, one per 2 MiB
//                  unit, PMD cache useless — the hashed backend's best case
//   dense-disjoint fig08-shaped multi-page disjoint swap, PMD caching on —
//                  where the crossover against cached radix sits
//   huge-swap      fig18-shaped 2 MiB-aligned swaps with PMD swapping on —
//                  one entry write per unit on both backends
//
// The walk columns isolate the translation-structure cost (CostKind
// kPageWalk: radix directory accesses vs hashed bucket probes); the total
// columns add the backend-independent syscall/lock/update/flush charges.
#include "bench/bench_util.h"
#include "simkernel/swapva.h"

using namespace svagc;

namespace {

struct Cycles {
  double total = 0;
  double walk = 0;
};

Cycles Account(const sim::CpuContext& ctx) {
  return {ctx.account.total(), ctx.account.ByKind(sim::CostKind::kPageWalk)};
}

// Overlapping slide by pages/2 over a contiguous mapping.
Cycles DenseSlide(sim::TranslationBackend backend, std::uint64_t pages) {
  sim::Machine machine(1, sim::ProfileXeonGold6130(), backend);
  sim::Kernel kernel(machine);
  const std::uint64_t delta = pages / 2;
  sim::PhysicalMemory phys((pages + delta + 8) << sim::kPageShift);
  sim::AddressSpace as(machine, phys);
  const sim::vaddr_t base = 1ULL << 32;
  as.MapRange(base, (pages + delta) << sim::kPageShift);
  sim::CpuContext ctx(machine, 0);
  kernel.SysSwapVa(as, ctx, base, base + (delta << sim::kPageShift), pages,
                   sim::SwapVaOptions{});
  return Account(ctx);
}

// `pairs` single-page swaps, every endpoint in its own 2 MiB unit.
Cycles SparseVector(sim::TranslationBackend backend, std::uint64_t pairs) {
  sim::Machine machine(1, sim::ProfileXeonGold6130(), backend);
  sim::Kernel kernel(machine);
  sim::PhysicalMemory phys((2 * pairs + 8) << sim::kPageShift);
  sim::AddressSpace as(machine, phys);
  const sim::vaddr_t base = 1ULL << 32;
  std::vector<sim::SwapRequest> requests;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const sim::vaddr_t a = base + i * sim::kHugePageSize;
    const sim::vaddr_t b = base + (2 * pairs - 1 - i) * sim::kHugePageSize;
    as.MapRange(a, sim::kPageSize);
    as.MapRange(b, sim::kPageSize);
    requests.push_back({a, b, 1});
  }
  sim::CpuContext ctx(machine, 0);
  kernel.SysSwapVaVec(as, ctx, requests, sim::SwapVaOptions{});
  return Account(ctx);
}

// fig08 shape: one contiguous multi-page disjoint swap, PMD caching on.
Cycles DenseDisjoint(sim::TranslationBackend backend, std::uint64_t pages) {
  sim::Machine machine(1, sim::ProfileXeonGold6130(), backend);
  sim::Kernel kernel(machine);
  sim::PhysicalMemory phys((2 * pages + 8) << sim::kPageShift);
  sim::AddressSpace as(machine, phys);
  const sim::vaddr_t base = 1ULL << 32;
  const std::uint64_t span = pages << sim::kPageShift;
  as.MapRange(base, 2 * span);
  sim::CpuContext ctx(machine, 0);
  kernel.SysSwapVa(as, ctx, base, base + span, pages, sim::SwapVaOptions{});
  return Account(ctx);
}

// fig18 shape: 2 MiB-aligned huge-mapped ranges, PMD swapping enabled.
Cycles HugeSwap(sim::TranslationBackend backend, std::uint64_t units) {
  sim::Machine machine(1, sim::ProfileXeonGold6130(), backend);
  sim::Kernel kernel(machine);
  sim::PhysicalMemory phys((2 * units + 1) * sim::kHugePageSize);
  sim::AddressSpace as(machine, phys);
  const sim::vaddr_t base = 1ULL << 33;
  as.MapRangeHuge(base, 2 * units * sim::kHugePageSize);
  sim::SwapVaOptions opts;
  opts.pmd_swapping = true;
  sim::CpuContext ctx(machine, 0);
  kernel.SysSwapVa(as, ctx, base, base + units * sim::kHugePageSize,
                   units * sim::kPagesPerHuge, opts);
  return Account(ctx);
}

}  // namespace

int main() {
  const sim::CostProfile profile = sim::ProfileXeonGold6130();
  std::printf("== Fig. 21: translation backends (radix vs hashed) ==\n");
  bench::PrintProfileHeader(profile);
  std::printf("hash_probe=%.0f swtlb_fill=%.0f cyc\n", profile.hash_probe,
              profile.swtlb_fill);

  TablePrinter table({"scenario", "pages", "radix(kcyc)", "hashed(kcyc)",
                      "radix walk(kcyc)", "hashed walk(kcyc)", "hashed/radix"});

  struct Scenario {
    const char* name;
    Cycles (*run)(sim::TranslationBackend, std::uint64_t);
    std::vector<std::uint64_t> sizes;
    std::uint64_t pages_per_size;  // pages = size * pages_per_size
  };
  const Scenario scenarios[] = {
      {"dense-slide", DenseSlide, {64, 256, 1024}, 1},
      {"sparse-vec", SparseVector, {16, 64, 256}, 1},
      {"dense-disjoint", DenseDisjoint, {64, 256, 1024}, 1},
      {"huge-swap", HugeSwap, {2, 8, 32}, sim::kPagesPerHuge},
  };

  double sparse_improvement = 0;
  for (const Scenario& s : scenarios) {
    for (const std::uint64_t size : bench::SmokeSweep(s.sizes)) {
      const Cycles radix = s.run(sim::TranslationBackend::kRadix, size);
      const Cycles hashed = s.run(sim::TranslationBackend::kHashed, size);
      const double ratio = hashed.total / radix.total;
      if (std::string(s.name) == "sparse-vec") {
        sparse_improvement =
            std::max(sparse_improvement, 100 * (1 - ratio));
      }
      // Row keys must be unique: the regression gate matches rows by the
      // first column.
      table.AddRow(
          {Format("%s/%llu", s.name, (unsigned long long)size),
           Format("%llu", (unsigned long long)(size * s.pages_per_size)),
           Format("%.2f", radix.total / 1e3),
           Format("%.2f", hashed.total / 1e3),
           Format("%.2f", radix.walk / 1e3),
           Format("%.2f", hashed.walk / 1e3), Format("%.3f", ratio)});
    }
  }
  bench::Emit("fig21", table);

  std::printf(
      "sparse swap vectors: hashed saves up to %.1f%% of modeled cycles "
      "(O(1) bucket relink vs per-leaf directory walk)\n",
      sparse_improvement);
  std::printf(
      "dense shapes: the PMD-cached radix walk amortizes to ~1 access/page, "
      "so cached radix and hashed converge; hashed wins whenever the cache "
      "cannot (sparse strides, cross-unit scatter)\n");
  return 0;
}
