// Fig. 10: the memmove/SwapVA break-even threshold on two machine
// configurations — (a) Xeon Gold 6130 / DDR4-2666, (b) Xeon Gold 6240 /
// DDR4-2933. Single-threaded, repeated copies (cache-warm memmove, the
// microbenchmark regime). Paper result: the crossover sits around 10 pages
// and shifts with the CPU/memory configuration; 10 pages is adopted as
// Threshold_Swapping. Doubles as the swap-vs-memmove ablation bench.
#include "bench/bench_util.h"

using namespace svagc;

namespace {

void Sweep(const char* id, const sim::CostProfile& profile) {
  bench::PrintProfileHeader(profile);
  sim::Machine machine(1, profile);
  sim::Kernel kernel(machine);
  sim::PhysicalMemory phys(2048 << sim::kPageShift);
  sim::AddressSpace as(machine, phys);
  const sim::vaddr_t base = 1ULL << 32;
  as.MapRange(base, 512 << sim::kPageShift);

  TablePrinter table({"pages", "memmove(kcyc)", "SwapVA(kcyc)", "winner"});
  std::uint64_t crossover = 0;
  for (const std::uint64_t pages : bench::SmokeSweep<std::uint64_t>(
           {1, 2, 4, 6, 8, 10, 12, 16, 24, 32, 48, 64})) {
    const std::uint64_t bytes = pages << sim::kPageShift;
    sim::CpuContext copy_ctx(machine, 0);
    as.CopyBytes(copy_ctx, base, base + (256ULL << sim::kPageShift), bytes,
                 sim::AddressSpace::CopyLocality::kHot);
    sim::CpuContext swap_ctx(machine, 0);
    kernel.SysSwapVa(as, swap_ctx, base, base + (256ULL << sim::kPageShift),
                     pages, sim::SwapVaOptions{});
    const double copy = copy_ctx.account.total();
    const double swap = swap_ctx.account.total();
    if (crossover == 0 && swap < copy) crossover = pages;
    table.AddRow({Format("%llu", (unsigned long long)pages),
                  Format("%.2f", copy / 1e3), Format("%.2f", swap / 1e3),
                  swap < copy ? "SwapVA" : "memmove"});
  }
  bench::Emit(id, table);
  std::printf("measured crossover: %llu pages (paper: ~10 pages)\n\n",
              (unsigned long long)crossover);
}

}  // namespace

int main() {
  std::printf("== Fig. 10: SwapVA threshold, two machine configurations ==\n");
  std::printf("-- (a) Xeon Gold 6130, DDR4-2666 --\n");
  Sweep("fig10a", sim::ProfileXeonGold6130());
  std::printf("-- (b) Xeon Gold 6240, DDR4-2933 --\n");
  Sweep("fig10b", sim::ProfileXeonGold6240());
  return 0;
}
